"""PHY backend bench: the analytic chipless sweep vs the chip reference.

Two gates:

1. **Paper-scale speedup.**  The full Table I 2000-node point runs end
   to end on ``phy_backend="chipless"`` (every pair decided by the
   closed-form sweep).  The chip-level reference cost for the same
   point is measured on a subsample of the point's actual pairs (same
   placement, assignment, compromise, and jamming state) and
   extrapolated to the full pair count — running all ~20k pairs through
   real waveform synthesis and sliding-window re-synchronization takes
   minutes, which is exactly the point.  Asserts a 10x speedup
   (trivially exceeded; relaxed further in smoke mode).

2. **Distribution identity.**  At ``phy_noise_std = 0`` the chip and
   chipless backends consume identical rng streams and must produce
   bit-for-bit identical pair outcomes — the gate that makes the
   speedup legitimate (same random variable, cheaper evaluation).

Results land in ``--bench-json`` (see ``conftest``) for CI artifacts;
the committed root-level ``BENCH_phy.json`` holds a full (non-smoke)
reference run.

Environment knobs (on top of ``conftest``'s):

- ``REPRO_BENCH_SMOKE``  set to 1 for CI smoke mode: a shrunk field,
  a smaller chip subsample, and a relaxed speedup floor.
"""

import os
import time

import numpy as np

from repro.adversary.compromise import CompromiseModel
from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.core.config import JRSNDConfig
from repro.core.dndp import DNDPSampler
from repro.dsss.phy import make_pair_phy
from repro.dsss.spread_code import CodePool
from repro.experiments.runner import NetworkExperiment
from repro.predistribution.authority import PreDistributor
from repro.sim.field import RectangularField
from repro.sim.mobility import uniform_positions
from repro.utils.rng import SeedSequencer


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")


def _point_state(config: JRSNDConfig, seed: int):
    """Replicate run 0's field snapshot exactly as the runner builds it
    (same seed labels), so the chip subsample times the *same* point the
    chipless sweep executes."""
    seeds = SeedSequencer(seed).child("run-0")
    field = RectangularField(
        config.field_width, config.field_height, config.tx_range
    )
    positions = uniform_positions(
        field, config.n_nodes, seeds.rng("placement")
    )
    pairs = field.neighbor_pairs(positions)
    distributor = PreDistributor(
        config.n_nodes, config.codes_per_node, config.share_count
    )
    assignment = distributor.assign(seeds.rng("assignment"))
    compromise = CompromiseModel(assignment).compromise_random(
        config.n_compromised, seeds.rng("compromise")
    )
    jamming = JammingModel.from_compromise(
        JammerStrategy.REACTIVE,
        compromise,
        config.z_jamming_signals,
        config.mu,
    )
    return pairs, assignment, jamming


def _shared_codes(assignment, pair):
    a, b = pair
    return sorted(
        set(assignment.node_codes[a]) & set(assignment.node_codes[b])
    )


def test_chipless_speedup_at_paper_scale(benchmark, seed, bench_record):
    if _smoke():
        config = JRSNDConfig(
            n_nodes=600, n_compromised=10, share_count=30,
            phy_backend="chipless",
        )
        subsample, target = 10, 4.0
    else:
        config = JRSNDConfig(phy_backend="chipless")
        subsample, target = 40, 10.0

    def compare():
        # Full point on the chipless sweep (best of two passes).
        def chipless_pass():
            experiment = NetworkExperiment(config, seed=seed)
            start = time.perf_counter()
            result = experiment.run(1)
            return time.perf_counter() - start, result

        chipless_t, result = min(
            (chipless_pass() for _ in range(2)),
            key=lambda pair: pair[0],
        )
        n_pairs = result.runs[0].n_pairs

        # Chip reference on a subsample of the same point's pairs.
        pairs, assignment, jamming = _point_state(config, seed)
        assert len(pairs) == n_pairs
        pool = CodePool.generate(
            assignment.pool_size, config.code_length, seed
        )
        chip_config = config.replace(phy_backend="chip")
        phy = make_pair_phy("chip", chip_config, jamming, pool=pool)
        sampler = DNDPSampler(chip_config, jamming, phy=phy)
        rng = np.random.default_rng(seed)
        sample = pairs[:: max(1, len(pairs) // subsample)][:subsample]
        # Warm the waveform/synchronizer caches out of the timed region.
        sampler.sample_pair(_shared_codes(assignment, sample[0]), rng)
        start = time.perf_counter()
        for pair in sample:
            sampler.sample_pair(_shared_codes(assignment, pair), rng)
        chip_sub_t = time.perf_counter() - start
        chip_t = chip_sub_t / len(sample) * n_pairs
        return chipless_t, chip_t, n_pairs, len(sample), result

    chipless_t, chip_t, n_pairs, sampled, result = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    speedup = chip_t / chipless_t
    benchmark.extra_info["n_pairs"] = n_pairs
    benchmark.extra_info["speedup"] = round(speedup, 1)
    bench_record(
        "phy_chipless_sweep_paper_point",
        n_nodes=config.n_nodes,
        n_pairs=n_pairs,
        chip_pairs_sampled=sampled,
        chipless_seconds=round(chipless_t, 4),
        chip_seconds_extrapolated=round(chip_t, 2),
        speedup=round(speedup, 1),
        target=target,
        p_dndp=round(result.discovery_probability("dndp"), 4),
    )
    print(
        f"\nn={config.n_nodes} pairs={n_pairs}: chipless "
        f"{chipless_t:.3f}s, chip ~{chip_t:.1f}s (extrapolated from "
        f"{sampled} pairs) -> {speedup:.0f}x"
    )
    assert speedup >= target, (
        f"chipless sweep only {speedup:.1f}x faster than the chip "
        f"reference (target {target:.0f}x)"
    )


def test_chip_chipless_distribution_identity(seed, bench_record):
    """The speedup gate's legitimacy: identical outcomes at sigma = 0.

    Both backends consume one shared rng stream contract, so with no
    noise every pair outcome (and every surviving-code set) must match
    bit for bit across a mixed bag of compromised and safe shared
    codes.
    """
    config = JRSNDConfig(phy_backend="chipless")
    n_codes = 64
    jamming = JammingModel(
        JammerStrategy.RANDOM,
        frozenset(range(n_codes // 2)),
        z=config.z_jamming_signals,
        mu=config.mu,
    )
    pool = CodePool.generate(n_codes, config.code_length, seed)
    chip_sampler = DNDPSampler(
        config, jamming,
        phy=make_pair_phy("chip", config, jamming, pool=pool),
    )
    chipless_sampler = DNDPSampler(
        config, jamming,
        phy=make_pair_phy("chipless", config, jamming),
    )
    pairs = 8 if _smoke() else 24
    rng_chip = np.random.default_rng(seed)
    rng_chipless = np.random.default_rng(seed)
    share_rng = np.random.default_rng(seed + 1)
    mismatches = 0
    for _ in range(pairs):
        shared = share_rng.choice(n_codes, size=4, replace=False)
        chip = chip_sampler.sample_pair(
            [int(code) for code in shared], rng_chip
        )
        chipless = chipless_sampler.sample_pair(
            [int(code) for code in shared], rng_chipless
        )
        if (
            chip.success != chipless.success
            or chip.surviving_codes != chipless.surviving_codes
        ):
            mismatches += 1
    bench_record(
        "phy_chip_chipless_identity",
        pairs=pairs,
        mismatches=mismatches,
    )
    assert mismatches == 0, (
        f"{mismatches}/{pairs} pair outcomes diverged between the chip "
        "and chipless backends at sigma = 0"
    )

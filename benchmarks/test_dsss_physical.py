"""Physical-layer validation bench: the chip-level DSSS assumptions.

Sweeps the jammed fraction of a HELLO at chip level, for two jammer
powers, and measures decode success through always-on foreign traffic
and wrong-code jamming:

- a *strong* jammer (2x power) flips the overlapped bits, which cost
  the Reed-Solomon decoder double (errors, not erasures) — the message
  dies once roughly half the ECC tolerance is overlapped;
- an *equal-power* jammer transmitting random data only cancels about
  half the overlapped bits into erasures, so decoding survives well
  past the nominal ``mu/(1+mu)`` tolerance.

The paper's message-level model ("lost iff the jammed fraction exceeds
``mu/(1+mu)``") sits between those chip-level regimes — a pessimistic
bound for equal-power jammers, optimistic for overpowered ones.  The
network simulations inherit that model (Theorem 1 is built on it); this
bench quantifies the physical bracket around it.
"""

import numpy as np

from repro.dsss.channel import ChipChannel
from repro.dsss.frame import Frame, FrameCodec, MessageType
from repro.dsss.spread_code import CodePool
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.experiments.reporting import format_series_table
from repro.utils.bitstring import bits_from_int
from repro.utils.rng import derive_rng

FRACTIONS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)
TRIALS = 10
PAYLOAD_BITS = 64  # longer frame -> finer RS symbol granularity


def _attempt(pool, codec, sync, fraction, amplitude, rng):
    frame = Frame(
        MessageType.HELLO,
        np.concatenate(
            [bits_from_int(int(rng.integers(0, 1 << 16)), 16),
             rng.integers(0, 2, PAYLOAD_BITS - 16).astype(np.int8)]
        ),
    )
    coded = codec.encode(frame)
    channel = ChipChannel(noise_std=0.3)
    channel.add_message(coded, pool.code(0), offset=0)
    channel.add_message(
        rng.integers(0, 2, coded.size).astype(np.int8), pool.code(2),
        offset=0,
    )
    channel.add_jamming(
        pool.code(3), offset=0, n_bits=coded.size, rng=rng, amplitude=1.5
    )
    n_jam = int(round(coded.size * fraction))
    if n_jam:
        channel.add_jamming(
            pool.code(0),
            offset=(coded.size - n_jam) * pool.code_length,
            n_bits=n_jam,
            rng=rng,
            amplitude=amplitude,
        )
    buffer = channel.render(rng=rng)
    decoded = sync.scan_validated(
        buffer, lambda res: codec.decode(res.bits, payload_bits=PAYLOAD_BITS)
    )
    return decoded == frame


def test_decode_vs_jammed_fraction(benchmark, seed):
    pool = CodePool.generate(6, 512, seed=seed)
    codec = FrameCodec(mu=1.0)

    def run_sweep():
        rng = derive_rng(seed, "dsss-bench")
        frame_bits = codec.coded_bits(PAYLOAD_BITS)
        sync = SlidingWindowSynchronizer(
            pool.subset([0, 1]), tau=0.15, message_bits=frame_bits
        )
        rows = []
        for fraction in FRACTIONS:
            strong = sum(
                _attempt(pool, codec, sync, fraction, 2.0, rng)
                for _ in range(TRIALS)
            )
            equal = sum(
                _attempt(pool, codec, sync, fraction, 1.0, rng)
                for _ in range(TRIALS)
            )
            rows.append(
                {
                    "jam_fraction": fraction,
                    "strong_jam_2x": strong / TRIALS,
                    "equal_power_jam": equal / TRIALS,
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            rows,
            title="Chip-level decode rate vs correct-code jam fraction "
                  "(mu = 1: model tolerance 0.5)",
        )
    )
    strong = {row["jam_fraction"]: row["strong_jam_2x"] for row in rows}
    equal = {row["jam_fraction"]: row["equal_power_jam"] for row in rows}
    # Unjammed: always decodes through foreign/wrong-code interference.
    assert strong[0.0] == 1.0
    # Strong jammer: dead well before full overlap; kill threshold is
    # below the model tolerance because flips cost the RS double.
    assert strong[0.1] >= 0.8
    assert strong[0.7] <= 0.2
    assert strong[0.9] <= 0.1
    # Equal-power random-data jam: only ~half the overlap erases, so
    # the frame outlives the model tolerance — the paper's model is
    # pessimistic in this regime.
    assert equal[0.5] >= 0.7
    assert equal[0.7] >= equal[0.9] - 1e-9  # weakly decreasing tail
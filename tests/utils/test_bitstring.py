"""Unit tests for bit-sequence utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.bitstring import (
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    hamming_distance,
    nrz_from_bits,
    nrz_to_bits,
    random_bits,
    xor_bits,
)


class TestBytesConversion:
    def test_single_byte_msb_first(self):
        assert bits_from_bytes(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_roundtrip(self, rng):
        data = bytes(rng.integers(0, 256, size=32, dtype=np.uint8))
        assert bits_to_bytes(bits_from_bytes(data)) == data

    def test_empty(self):
        assert bits_from_bytes(b"").size == 0
        assert bits_to_bytes(np.zeros(0, dtype=np.int8)) == b""

    def test_rejects_non_bytes(self):
        with pytest.raises(ConfigurationError):
            bits_from_bytes("not bytes")

    def test_rejects_unaligned_length(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes(np.array([1, 0, 1]))

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes(np.array([2] * 8))


class TestIntConversion:
    def test_fixed_width(self):
        assert bits_from_int(5, 4).tolist() == [0, 1, 0, 1]

    def test_roundtrip(self, rng):
        for _ in range(50):
            width = int(rng.integers(1, 32))
            value = int(rng.integers(0, 1 << width))
            assert bits_to_int(bits_from_int(value, width)) == value

    def test_value_too_big(self):
        with pytest.raises(ConfigurationError):
            bits_from_int(16, 4)

    def test_negative_value(self):
        with pytest.raises(ConfigurationError):
            bits_from_int(-1, 4)

    def test_zero_width(self):
        with pytest.raises(ConfigurationError):
            bits_from_int(0, 0)

    def test_bits_to_int_rejects_bad_bit(self):
        with pytest.raises(ConfigurationError):
            bits_to_int(np.array([1, 3]))


class TestNrz:
    def test_mapping(self):
        assert nrz_from_bits(np.array([0, 1])).tolist() == [-1, 1]

    def test_roundtrip(self, rng):
        bits = random_bits(100, rng)
        assert np.array_equal(nrz_to_bits(nrz_from_bits(bits)), bits)

    def test_rejects_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            nrz_from_bits(np.array([0, 2]))

    def test_rejects_invalid_nrz(self):
        with pytest.raises(ConfigurationError):
            nrz_to_bits(np.array([0, 1]))


class TestXorAndDistance:
    def test_xor(self):
        a = np.array([1, 1, 0, 0], dtype=np.int8)
        b = np.array([1, 0, 1, 0], dtype=np.int8)
        assert xor_bits(a, b).tolist() == [0, 1, 1, 0]

    def test_xor_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            xor_bits(np.array([1]), np.array([1, 0]))

    def test_hamming_distance(self):
        a = np.array([1, 1, 0, 0], dtype=np.int8)
        b = np.array([1, 0, 1, 0], dtype=np.int8)
        assert hamming_distance(a, b) == 2

    def test_hamming_zero_on_equal(self, rng):
        bits = random_bits(64, rng)
        assert hamming_distance(bits, bits) == 0


class TestRandomBits:
    def test_length(self, rng):
        assert random_bits(17, rng).size == 17

    def test_binary(self, rng):
        bits = random_bits(1000, rng)
        assert set(np.unique(bits)) <= {0, 1}

    def test_negative_length(self, rng):
        with pytest.raises(ConfigurationError):
            random_bits(-1, rng)

    def test_roughly_balanced(self, rng):
        bits = random_bits(10000, rng)
        assert 4500 < bits.sum() < 5500

"""Unit tests for the statistics helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.stats import mean_confidence_interval, wilson_interval


class TestMeanCI:
    def test_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert low < mean < high

    def test_single_sample_degenerate(self):
        assert mean_confidence_interval([5.0]) == (5.0, 5.0, 5.0)

    def test_coverage(self, rng):
        """~95% of intervals contain the true mean."""
        covered = 0
        for _ in range(300):
            samples = rng.normal(10.0, 2.0, size=20)
            _, low, high = mean_confidence_interval(samples.tolist())
            covered += low <= 10.0 <= high
        assert covered / 300 == pytest.approx(0.95, abs=0.05)

    def test_narrower_with_more_samples(self, rng):
        small = rng.normal(0, 1, size=10).tolist()
        large = (small * 10)
        _, lo1, hi1 = mean_confidence_interval(small)
        _, lo2, hi2 = mean_confidence_interval(large)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])

    def test_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0], confidence=1.5)


class TestWilson:
    def test_estimate(self):
        p, low, high = wilson_interval(80, 100)
        assert p == pytest.approx(0.8)
        assert low < 0.8 < high

    def test_bounded(self):
        _, low, high = wilson_interval(0, 10)
        assert low == 0.0
        _, low2, high2 = wilson_interval(10, 10)
        assert high2 == 1.0

    def test_nondegenerate_at_extremes(self):
        # Unlike the normal approximation, the interval has width at 0.
        _, low, high = wilson_interval(0, 50)
        assert high > 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(11, 10)

    def test_coverage(self, rng):
        covered = 0
        p_true = 0.3
        for _ in range(300):
            wins = int(rng.binomial(60, p_true))
            _, low, high = wilson_interval(wins, 60)
            covered += low <= p_true <= high
        assert covered / 300 >= 0.9

"""Tests for the atomic file-write helpers."""

import os

import pytest

from repro.utils.fileio import atomic_write_bytes, atomic_write_text


class TestAtomicWriteBytes:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"payload")
        assert target.read_bytes() == b"payload"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(str(target), b"new")
        assert target.read_bytes() == b"new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"payload")
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_failed_write_leaves_target_untouched(self, tmp_path,
                                                  monkeypatch):
        """Simulate an interrupt mid-write: the original file survives
        and no orphan temp file remains."""
        target = tmp_path / "out.bin"
        target.write_bytes(b"original")

        def exploding_fsync(fd):
            raise OSError("disk vanished")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            atomic_write_bytes(str(target), b"partial")
        assert target.read_bytes() == b"original"
        assert os.listdir(tmp_path) == ["out.bin"]


class TestAtomicWriteText:
    def test_appends_trailing_newline(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), '{"a": 1}')
        assert target.read_text() == '{"a": 1}\n'

    def test_does_not_double_newline(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), "line\n")
        assert target.read_text() == "line\n"

    def test_ensure_newline_false(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(str(target), "raw", ensure_newline=False)
        assert target.read_text() == "raw"

"""Unit tests for argument validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("value", [0, -1, -0.1])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1e-9)


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0, 0.5, 1])
    def test_accepts(self, value):
        assert check_fraction("f", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_fraction("f", value)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1, 1, 5) == 1
        assert check_in_range("x", 5, 1, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 6, 1, 5)


class TestCheckType:
    def test_accepts_match(self):
        assert check_type("x", 5, int) == 5

    def test_accepts_tuple(self):
        assert check_type("x", 5.0, (int, float)) == 5.0

    def test_rejects_mismatch(self):
        with pytest.raises(ConfigurationError, match="int"):
            check_type("x", "s", int)

"""Tests for the process-local artifact cache."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, installed
from repro.utils.artifact_cache import (
    ArtifactCache,
    clear_shared_cache,
    shared_cache,
)


class TestArtifactCache:
    def test_builds_once_then_hits(self):
        cache = ArtifactCache()
        calls = []
        for _ in range(3):
            value = cache.get_or_build(
                "demo", ("a",), lambda: calls.append(1) or "built"
            )
            assert value == "built"
        assert len(calls) == 1
        assert cache.hits == 2
        assert cache.misses == 1

    def test_distinct_kinds_do_not_collide(self):
        cache = ArtifactCache()
        first = cache.get_or_build("kind1", ("k",), lambda: "one")
        second = cache.get_or_build("kind2", ("k",), lambda: "two")
        assert (first, second) == ("one", "two")
        assert len(cache) == 2

    def test_lru_eviction_drops_oldest(self):
        cache = ArtifactCache(max_entries=2)
        cache.get_or_build("k", (1,), lambda: 1)
        cache.get_or_build("k", (2,), lambda: 2)
        # Touch (1,) so (2,) becomes the least recently used entry.
        cache.get_or_build("k", (1,), lambda: -1)
        cache.get_or_build("k", (3,), lambda: 3)
        assert ("k", (1,)) in cache
        assert ("k", (3,)) in cache
        assert ("k", (2,)) not in cache

    def test_clear_preserves_totals(self):
        cache = ArtifactCache()
        cache.get_or_build("k", (1,), lambda: 1)
        cache.get_or_build("k", (1,), lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.misses == 1
        # A cleared key rebuilds (a fresh miss).
        cache.get_or_build("k", (1,), lambda: 2)
        assert cache.misses == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ArtifactCache(max_entries=0)

    def test_metrics_counters_emitted_when_installed(self):
        cache = ArtifactCache()
        registry = MetricsRegistry()
        with installed(registry):
            cache.get_or_build("rs_codec", (3,), lambda: "x")
            cache.get_or_build("rs_codec", (3,), lambda: "x")
        snapshot = registry.snapshot()
        assert snapshot.counters["cache.rs_codec.misses"] == 1
        assert snapshot.counters["cache.rs_codec.hits"] == 1


class TestSharedCache:
    def test_shared_cache_is_process_singleton(self):
        clear_shared_cache()
        assert shared_cache() is shared_cache()

    def test_clear_shared_cache_drops_entries(self):
        clear_shared_cache()
        shared_cache().get_or_build("k", ("x",), lambda: 1)
        assert len(shared_cache()) >= 1
        clear_shared_cache()
        assert ("k", ("x",)) not in shared_cache()

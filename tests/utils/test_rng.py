"""Unit tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import SeedSequencer, derive_rng, fraction_indices


class TestDeriveRng:
    def test_same_label_same_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))

    def test_different_labels_differ(self):
        a = derive_rng(7, "x").integers(0, 1 << 30, 10)
        b = derive_rng(7, "y").integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(7, "x").integers(0, 1 << 30, 10)
        b = derive_rng(8, "x").integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)


class TestSeedSequencer:
    def test_reproducible_children(self):
        s = SeedSequencer(42)
        a = s.rng("jammer").integers(0, 1000, 5)
        b = SeedSequencer(42).rng("jammer").integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_child_namespacing(self):
        s = SeedSequencer(42)
        c1 = s.child("run-1").rng("placement").integers(0, 1 << 30, 5)
        c2 = s.child("run-2").rng("placement").integers(0, 1 << 30, 5)
        assert not np.array_equal(c1, c2)

    def test_spawn_order(self):
        s = SeedSequencer(42)
        rngs = s.spawn(["a", "b"])
        assert np.array_equal(
            rngs[0].integers(0, 1000, 3),
            s.rng("a").integers(0, 1000, 3),
        )

    def test_rejects_non_int_seed(self):
        with pytest.raises(ConfigurationError):
            SeedSequencer("seed")

    def test_seed_property(self):
        assert SeedSequencer(9).seed == 9


class TestFractionIndices:
    def test_count(self, rng):
        assert fraction_indices(100, 0.25, rng).size == 25

    def test_distinct(self, rng):
        idx = fraction_indices(50, 0.8, rng)
        assert len(set(idx.tolist())) == idx.size

    def test_bounds(self, rng):
        idx = fraction_indices(10, 1.0, rng)
        assert idx.min() >= 0 and idx.max() < 10

    def test_zero_fraction(self, rng):
        assert fraction_indices(10, 0.0, rng).size == 0

    def test_invalid_fraction(self, rng):
        with pytest.raises(ConfigurationError):
            fraction_indices(10, 1.5, rng)

    def test_negative_length(self, rng):
        with pytest.raises(ConfigurationError):
            fraction_indices(-1, 0.5, rng)

"""SARIF reporter tests.

``jsonschema`` is not a dependency, so validation is structural: every
constraint asserted here is one the 2.1.0 schema enforces (required
properties, 1-based regions, valid ruleIndex back-references).
"""

import json
from pathlib import Path

from repro.lint import LintConfig, default_rules, lint_source
from repro.lint.rules import RULE_PACK_VERSION
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
)

FIXTURES = Path(__file__).parent / "fixtures"


def sample_violations():
    source = (FIXTURES / "jrs001_bad.py").read_text()
    config = LintConfig()
    violations = lint_source(
        source, "src/repro/core/fixture.py",
        default_rules(config), config,
    )
    assert violations, "fixture must produce findings"
    return violations


def render(violations) -> dict:
    return json.loads(render_sarif(violations))


class TestDocumentShape:
    def test_envelope(self):
        document = render(sample_violations())
        assert document["$schema"] == SARIF_SCHEMA_URI
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert len(document["runs"]) == 1

    def test_driver_metadata(self):
        driver = render([])["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro.lint"
        assert driver["version"] == RULE_PACK_VERSION
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert len(rule_ids) == len(set(rule_ids)), "duplicate rule ids"
        assert "JRS000" in rule_ids  # suppression hygiene is reportable
        for code in ("JRS001", "JRS008", "JRS009", "JRS010", "JRS011"):
            assert code in rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]

    def test_empty_run_has_empty_results(self):
        document = render([])
        assert document["runs"][0]["results"] == []


class TestResults:
    def test_every_result_is_well_formed(self):
        document = render(sample_violations())
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            index = result["ruleIndex"]
            assert 0 <= index < len(rules)
            assert rules[index]["id"] == result["ruleId"]
            assert result["level"] in ("error", "warning")
            assert result["message"]["text"]
            region = result["locations"][0]["physicalLocation"][
                "region"
            ]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            location = result["locations"][0]["physicalLocation"][
                "artifactLocation"
            ]
            assert "\\" not in location["uri"], "URIs use forward slashes"

    def test_severity_mapping(self):
        source = (
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'  # registered → warning
            "import random\n"
            "x = random.random()\n"  # unseeded → error
        )
        config = LintConfig()
        violations = lint_source(
            source, "src/repro/core/fixture.py",
            default_rules(config), config,
        )
        levels = {
            result["ruleId"]: result["level"]
            for result in render(violations)["runs"][0]["results"]
        }
        assert levels["JRS001"] == "error"
        assert levels["JRS004"] == "warning"

    def test_output_is_stable(self):
        violations = sample_violations()
        assert render_sarif(violations) == render_sarif(violations)

"""JRS002 negative fixture: simulated time via the event loop."""


def timestamps(sim):
    started = sim.now
    sim.call_at(started + 1.5, lambda: None)
    return started

"""Bad: fresh generators minted inside the simulated world."""

from dataclasses import dataclass, field

import numpy as np


def _fresh_rng():
    return np.random.default_rng(1234)


def jitter(n):
    rng = np.random.Generator(np.random.PCG64(7))
    return rng.normal(size=n)


maker = np.random.default_rng


def alias_draw(n):
    rng = maker(99)
    return rng.normal(size=n)


def consume(rng, n):
    return rng.normal(size=n)


def sample(n):
    return consume(np.random.default_rng(5), n)


@dataclass
class NoisyChannel:
    rng: np.random.Generator = field(default_factory=_fresh_rng)

"""--fix fixture: registered literals rewritten to constants."""

from repro.obs import current as _metrics


def report() -> None:
    registry = _metrics()
    registry.inc("dsss.scans")
    registry.inc("dndp.established", 2)
    registry.observe("mndp.recovery_hops", 3)
    registry.gauge("sim.time", 1.5)

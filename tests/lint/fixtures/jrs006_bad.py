"""JRS006 positive fixture: mutable defaults of every common shape."""


def collect(items=[], index={}, seen=set(), order=list()):
    return items, index, seen, order


def keyword_only(*, acc=dict()):
    return acc

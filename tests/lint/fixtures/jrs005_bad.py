"""JRS005 positive fixture (linted under a dsss/ virtual path)."""


def thresholds(peak: float, energy: float):
    if peak == 0.75:
        return True
    if 1.0 != energy:
        return False
    return peak == energy == 0.0

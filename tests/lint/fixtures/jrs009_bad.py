"""Bad: unpicklables reaching the pool boundary through helpers."""


def fan_out(pool, fn, items):
    return list(pool.imap_unordered(fn, items))


def fan_out_twice(pool, worker, items):
    first = fan_out(pool, worker, items)
    return first + fan_out(pool, worker, items)


def launch(pool, items):
    return fan_out(pool, lambda x: x + 1, items)


def launch_nested(pool, items):
    def helper(x):
        return x * 2

    return fan_out(pool, helper, items)


def launch_deep(pool, items):
    return fan_out_twice(pool, lambda x: x - 1, items)

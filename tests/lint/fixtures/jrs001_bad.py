"""JRS001 positive fixture: every flavour of unseeded randomness."""

import random
import numpy as np
from numpy.random import default_rng


def draws():
    a = random.random()
    b = random.randint(0, 10)
    random.seed(7)
    c = np.random.rand(4)
    d = np.random.choice([1, 2, 3])
    np.random.seed(0)
    e = np.random.default_rng()
    f = default_rng()
    return a, b, c, d, e, f

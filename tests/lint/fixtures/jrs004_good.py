"""JRS004 negative fixture: constants and registered helpers."""

from repro.obs import current as _metrics
from repro.obs import names as _names


def report(kind: str, name: str) -> None:
    registry = _metrics()
    registry.inc(_names.DSSS_SCANS)
    registry.observe(_names.MNDP_RECOVERY_HOPS, 3)
    registry.inc(_names.CAMPAIGNS_SHARDS_COMPLETED)
    registry.inc(_names.PHY_PAIRS_SWEPT)
    registry.inc(_names.POOL_WARM_HITS)
    registry.inc(_names.POOL_WORKERS_RESPAWNED)
    registry.inc(_names.POOL_RUNS_QUARANTINED)
    registry.inc(_names.CAMPAIGNS_STORE_SALVAGED)
    registry.inc(_names.LINT_FILES_ANALYZED)
    registry.inc(_names.LINT_CACHE_HITS)
    registry.inc(_names.cache_hits(kind))
    registry.inc(name)  # forwarder: literal checked at its call site
    ["a", "b"].count("a")
    "x.y".count(".")

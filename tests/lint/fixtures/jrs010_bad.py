"""Bad: a dsss module reaching up the architecture DAG."""

import repro.experiments
from repro.analysis import aggregate
from repro.campaigns import spec
from repro.cli import main
from repro.core import jrsnd

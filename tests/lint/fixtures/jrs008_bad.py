"""Bad: state shared with a dispatcher thread touched outside the lock."""

import threading


class Pump:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._open = False
        self._count = 0
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while True:
            if self._open:
                self._count += 1
            self._step()

    def _step(self) -> None:
        self._count += 1

    def open(self) -> None:
        self._open = True

    def close(self) -> None:
        with self._lock:
            self._open = False
        self._count = 0

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

"""JRS001 negative fixture: seeded construction only."""

import numpy as np
from numpy.random import default_rng

from repro.utils.rng import SeedSequencer, derive_rng


def draws(rng: np.random.Generator):
    seeded = np.random.default_rng(42)
    from_seq = np.random.default_rng(np.random.SeedSequence(7))
    named = default_rng(seed=3)
    derived = derive_rng(1, "fixture")
    child = SeedSequencer(5).rng("fixture")
    return rng.integers(0, 10), seeded, from_seq, named, derived, child

"""Suppression fixture: justified waivers silence their line only."""


def boundary():
    try:
        pass
    except Exception:  # jrsnd: noqa(JRS003) -- top-level CLI boundary reports and exits
        pass

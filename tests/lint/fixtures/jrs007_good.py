"""JRS007 negative fixture: module-scope callables only."""

import multiprocessing


def _worker(item):
    return item * 2


def _init(seed):
    return None


def fan_out(items):
    with multiprocessing.Pool(
        2, initializer=_init, initargs=(7,)
    ) as pool:
        doubled = pool.map(_worker, items)
    return doubled

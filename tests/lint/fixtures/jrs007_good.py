"""JRS007 negative fixture: module-scope callables only."""

import multiprocessing

from repro.experiments.parallel import run_parallel


def _worker(item):
    return item * 2


def _init(seed):
    return None


def fan_out(items):
    with multiprocessing.Pool(
        2, initializer=_init, initargs=(7,)
    ) as pool:
        doubled = pool.map(_worker, items)
    return doubled


def sweep(configs):
    return [
        run_parallel(config, seed=7, runs=2) for config in configs
    ]


def warm_sweep(pool, spec, items):
    return pool.submit(spec, items)

"""Suppression fixture: missing justification and unknown codes."""


def boundary():
    try:
        pass
    except Exception:  # jrsnd: noqa(JRS003)
        pass
    try:
        pass
    except Exception:  # jrsnd: noqa(BOGUS)
        pass

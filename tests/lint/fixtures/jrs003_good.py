"""JRS003 negative fixture: concrete error families only."""

from repro.errors import DecodeError, ProtocolError


def handlers():
    try:
        pass
    except DecodeError:
        pass
    try:
        pass
    except (ProtocolError, ValueError):
        pass
    try:
        pass
    except OSError as exc:
        raise exc

"""JRS002 positive fixture (linted under a sim/ virtual path)."""

import time
from datetime import date, datetime


def timestamps():
    a = time.time()
    b = time.time_ns()
    c = time.perf_counter()
    d = datetime.now()
    e = datetime.utcnow()
    f = date.today()
    return a, b, c, d, e, f

"""JRS006 negative fixture: immutable defaults."""

from typing import Optional, Tuple


def collect(
    items: Tuple[int, ...] = (),
    index: Optional[dict] = None,
    label: str = "default",
    count: int = 0,
):
    index = {} if index is None else index
    return items, index, label, count

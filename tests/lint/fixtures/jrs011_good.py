"""Good: generators derived from the experiment seed tree."""

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedSequencer, derive_rng


def jitter(seq, n):
    rng = seq.child("jitter")
    return rng.normal(size=n)


def sample(seed, n):
    rng = derive_rng(seed, "sample")
    return rng.normal(size=n)


@dataclass
class NoisyChannel:
    rng: np.random.Generator

    def draw(self, n):
        return self.rng.normal(size=n)

"""Good: dsss depends only down the DAG; back refs use escape hatches."""

from typing import TYPE_CHECKING

import repro.ecc
from repro.obs import names
from repro.utils import rng

if TYPE_CHECKING:
    # Annotation-only back reference: no import-time edge.
    from repro.experiments import runner


def lazy_bridge():
    # Function-scope import: the sanctioned lazy back edge.
    from repro.campaigns import spec

    return spec

"""JRS003 positive fixture: bare and broad excepts."""


def handlers():
    try:
        pass
    except:
        pass
    try:
        pass
    except Exception:
        pass
    try:
        pass
    except BaseException as exc:
        raise exc
    try:
        pass
    except (ValueError, Exception):
        pass

"""JRS004 positive fixture: typo'd and dynamically built names."""

from repro.obs import current as _metrics


def report(kind: str) -> None:
    registry = _metrics()
    registry.inc("dsss.scnas")
    registry.observe("mndp.recovery_hopz", 3)
    registry.inc(f"cache.{kind}.hits")
    registry.inc("campaigns.shards_comlpeted")
    registry.inc("phy.pairs_sweept")
    registry.inc("pool.warm_hitz")
    registry.inc("pool.workers_respwaned")
    registry.inc("campaigns.store_salvagd")
    registry.inc("lint.cache_hitz")

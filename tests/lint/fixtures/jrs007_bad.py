"""JRS007 positive fixture: unpicklable work at the pool boundary."""

import multiprocessing


def fan_out(items):
    def local_worker(item):
        return item * 2

    with multiprocessing.Pool(2) as pool:
        doubled = pool.map(lambda item: item * 2, items)
        tripled = pool.imap_unordered(local_worker, items)
        async_r = pool.apply_async(local_worker, (1,))
    return doubled, list(tripled), async_r

"""JRS007 positive fixture: unpicklable work at the pool boundary."""

import multiprocessing

from repro.experiments.parallel import run_parallel


def fan_out(items):
    def local_worker(item):
        return item * 2

    with multiprocessing.Pool(2) as pool:
        doubled = pool.map(lambda item: item * 2, items)
        tripled = pool.imap_unordered(local_worker, items)
        async_r = pool.apply_async(local_worker, (1,))
    return doubled, list(tripled), async_r


def sweep():
    return run_parallel(lambda: None, 7, 4)


def warm_sweep(pool, items):
    return pool.submit(lambda item: item * 2, items)

"""Good: every shared access under the lock; thread-owned state free."""

import threading


class Pump:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._open = False
        self._count = 0
        self._ticks = 0
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._open:
                    self._count += 1
            # Dispatcher-owned: never touched by public methods, so no
            # lock is required.
            self._ticks = self._ticks + 1
            self._step()

    def _step(self) -> None:
        with self._lock:
            self._count += 1

    def open(self) -> None:
        with self._lock:
            self._open = True

    def close(self) -> None:
        with self._lock:
            self._open = False
            self._count = 0

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

"""Good: only module-scope callables cross the boundary, however deep."""


def _double(x):
    return x * 2


def fan_out(pool, fn, items):
    return list(pool.imap_unordered(fn, items))


def fan_out_twice(pool, worker, items):
    first = fan_out(pool, worker, items)
    return first + fan_out(pool, worker, items)


def launch(pool, items):
    return fan_out(pool, _double, items)


def launch_deep(pool, items):
    return fan_out_twice(pool, _double, items)

"""JRS005 negative fixture: tolerances and integer comparisons."""

import math


def thresholds(peak: float, count: int):
    if math.isclose(peak, 0.75):
        return True
    if count == 0:
        return False
    return peak >= 0.5

"""Engine-level tests: suppressions, selection, ordering, robustness."""

from pathlib import Path

from repro.lint import LintConfig, default_rules, lint_source
from repro.lint.engine import parse_suppressions

FIXTURES = Path(__file__).parent / "fixtures"


def lint(source: str, path: str = "src/repro/core/x.py", **cfg):
    config = LintConfig(**cfg)
    return lint_source(source, path, default_rules(config), config)


class TestSuppressions:
    def test_justified_suppression_silences_its_line(self):
        source = (FIXTURES / "suppression_ok.py").read_text()
        assert lint(source) == []

    def test_unjustified_suppression_does_not_suppress(self):
        source = (FIXTURES / "suppression_bad.py").read_text()
        violations = lint(source)
        rules = sorted(v.rule for v in violations)
        # Both broad excepts still fire, plus one JRS000 per bad noqa.
        assert rules == ["JRS000", "JRS000", "JRS003", "JRS003"]
        messages = [
            v.message for v in violations if v.rule == "JRS000"
        ]
        assert any("justification" in m for m in messages)
        assert any("no valid rule codes" in m for m in messages)

    def test_suppression_only_covers_named_rules(self):
        source = (
            "try:\n"
            "    pass\n"
            "except Exception:  "
            "# jrsnd: noqa(JRS001) -- wrong code on purpose\n"
            "    pass\n"
        )
        assert [v.rule for v in lint(source)] == ["JRS003"]

    def test_multiple_codes_one_comment(self):
        source = (
            "import time\n"
            "def f(xs=[]):\n"
            "    return xs, time.time()  "
            "# jrsnd: noqa(JRS002, JRS006) -- fixture exercises both\n"
        )
        violations = lint(source, path="src/repro/sim/x.py")
        # JRS006 fires on the def line, not the suppressed one.
        assert [v.rule for v in violations] == ["JRS006"]

    def test_noqa_in_string_literal_is_not_a_suppression(self):
        source = 'POLICY = "# jrsnd: noqa(JRS003) -- not a comment"\n'
        assert lint(source) == []

    def test_parse_suppressions_round_trip(self):
        suppressions, hygiene = parse_suppressions(
            "x = 1  # jrsnd: noqa(JRS005) -- exact sentinel compare\n",
            "x.py",
        )
        assert hygiene == []
        assert suppressions[1].codes == ("JRS005",)
        assert suppressions[1].justification == (
            "exact sentinel compare"
        )


class TestSelection:
    SOURCE = (
        "import time\n"
        "def f(xs=[]):\n"
        "    return xs, time.time()\n"
    )

    def test_select_runs_only_named_rules(self):
        violations = lint(
            self.SOURCE, path="src/repro/sim/x.py",
            select={"JRS006"},
        )
        assert [v.rule for v in violations] == ["JRS006"]

    def test_ignore_skips_named_rules(self):
        violations = lint(
            self.SOURCE, path="src/repro/sim/x.py",
            ignore={"JRS002"},
        )
        assert [v.rule for v in violations] == ["JRS006"]


class TestEngineBehaviour:
    def test_findings_sorted_by_position(self):
        source = (
            "import time\n"
            "def f(xs=[]):\n"
            "    return xs, time.time()\n"
            "def g(ys={}):\n"
            "    return ys\n"
        )
        violations = lint(source, path="src/repro/sim/x.py")
        positions = [(v.line, v.col) for v in violations]
        assert positions == sorted(positions)

    def test_syntax_error_reported_not_raised(self):
        violations = lint("def broken(:\n")
        assert len(violations) == 1
        assert violations[0].rule == "JRS000"
        assert "syntax error" in violations[0].message

    def test_relative_imports_do_not_crash_alias_tracking(self):
        source = (
            "from . import sibling\n"
            "from .. import parent\n"
            "sibling.anything()\n"
        )
        assert lint(source) == []

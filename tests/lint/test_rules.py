"""Per-rule fixture tests: each JRS rule fires on its known-bad
fixture and stays silent on the corrected version."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, default_rules, lint_project, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Virtual paths: scoped rules (JRS002, JRS005) key off the module's
#: location, so fixtures are linted as-if they lived in scope.
IN_SCOPE = {
    "JRS001": "src/repro/core/fixture.py",
    "JRS002": "src/repro/sim/fixture.py",
    "JRS003": "src/repro/core/fixture.py",
    "JRS004": "src/repro/experiments/fixture.py",
    "JRS005": "src/repro/dsss/fixture.py",
    "JRS006": "src/repro/analysis/fixture.py",
    "JRS007": "src/repro/experiments/fixture.py",
}

#: Minimum findings each bad fixture must produce for its own rule.
EXPECTED_MIN = {
    "JRS001": 7,
    "JRS002": 6,
    "JRS003": 4,
    "JRS004": 8,
    "JRS005": 2,
    "JRS006": 5,
    "JRS007": 5,
}

#: Cross-module rules: fixtures are linted as a one-file project tree
#: rooted at the virtual path (both phases run, so a bad fixture must
#: also be free of per-file findings).
PROJECT_IN_SCOPE = {
    "JRS008": "src/repro/experiments/fixture.py",
    "JRS009": "src/repro/experiments/fixture.py",
    "JRS010": "src/repro/dsss/fixture.py",
    "JRS011": "src/repro/sim/fixture.py",
}

PROJECT_EXPECTED_MIN = {
    "JRS008": 5,
    "JRS009": 3,
    "JRS010": 5,
    "JRS011": 5,
}


def run_fixture(name: str, virtual_path: str):
    source = (FIXTURES / name).read_text()
    config = LintConfig()
    return lint_source(
        source, virtual_path, default_rules(config), config
    )


def run_project_fixture(name: str, virtual_path: str, tmp_path: Path):
    """Lint one fixture as a project tree at its virtual location."""
    target = tmp_path / virtual_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text((FIXTURES / name).read_text())
    result = lint_project(
        [str(tmp_path)], LintConfig(), use_cache=False
    )
    return result.violations


def run_project_tree(tmp_path: Path, files: dict):
    """Lint a dict of {virtual_path: source} as one project tree."""
    for virtual_path, source in files.items():
        target = tmp_path / virtual_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    result = lint_project(
        [str(tmp_path)], LintConfig(), use_cache=False
    )
    return result.violations


@pytest.mark.parametrize("code", sorted(IN_SCOPE))
class TestRulePack:
    def test_fires_on_bad_fixture(self, code):
        violations = run_fixture(
            f"{code.lower()}_bad.py", IN_SCOPE[code]
        )
        own = [v for v in violations if v.rule == code]
        assert len(own) >= EXPECTED_MIN[code]
        others = {v.rule for v in violations} - {code}
        assert not others, f"unexpected cross-rule noise: {others}"

    def test_silent_on_good_fixture(self, code):
        violations = run_fixture(
            f"{code.lower()}_good.py", IN_SCOPE[code]
        )
        assert violations == []


@pytest.mark.parametrize("code", sorted(PROJECT_IN_SCOPE))
class TestProjectRulePack:
    def test_fires_on_bad_fixture(self, code, tmp_path):
        violations = run_project_fixture(
            f"{code.lower()}_bad.py", PROJECT_IN_SCOPE[code], tmp_path
        )
        own = [v for v in violations if v.rule == code]
        assert len(own) >= PROJECT_EXPECTED_MIN[code]
        others = {v.rule for v in violations} - {code}
        assert not others, f"unexpected cross-rule noise: {others}"

    def test_silent_on_good_fixture(self, code, tmp_path):
        violations = run_project_fixture(
            f"{code.lower()}_good.py", PROJECT_IN_SCOPE[code], tmp_path
        )
        assert violations == []


class TestProjectRuleDetails:
    def test_jrs008_container_mutation_is_not_shared(self, tmp_path):
        """Mutating a container through a stable self reference is
        single-owner state, not a shared-attribute rebind."""
        source = (
            "import threading\n"
            "\n"
            "\n"
            "class Queue:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._jobs = []\n"
            "        self._t = threading.Thread(target=self._loop)\n"
            "\n"
            "    def _loop(self):\n"
            "        self._jobs.append(1)\n"
            "\n"
            "    def push(self, job):\n"
            "        self._jobs.append(job)\n"
            "\n"
            "    def pop(self):\n"
            "        return self._jobs.pop()\n"
        )
        violations = run_project_tree(
            tmp_path, {"src/repro/experiments/fixture.py": source}
        )
        assert violations == []

    def test_jrs010_import_cycle_detected(self, tmp_path):
        violations = run_project_tree(
            tmp_path,
            {
                "src/repro/sim/alpha.py": "from repro.sim import beta\n",
                "src/repro/sim/beta.py": "from repro.sim import alpha\n",
            },
        )
        cycles = [
            v for v in violations if "import cycle" in v.message
        ]
        assert len(cycles) == 1
        assert cycles[0].rule == "JRS010"
        assert "repro.sim.alpha" in cycles[0].message
        assert "repro.sim.beta" in cycles[0].message

    def test_jrs010_lazy_import_breaks_cycle(self, tmp_path):
        violations = run_project_tree(
            tmp_path,
            {
                "src/repro/sim/alpha.py": "from repro.sim import beta\n",
                "src/repro/sim/beta.py": (
                    "def late():\n"
                    "    from repro.sim import alpha\n"
                    "    return alpha\n"
                ),
            },
        )
        assert violations == []

    def test_jrs011_cross_module_producer(self, tmp_path):
        """A helper in another module that returns a fresh generator
        taints its callers inside the simulated world."""
        violations = run_project_tree(
            tmp_path,
            {
                "src/repro/utils/mkrng.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def make_rng(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                ),
                "src/repro/sim/noise.py": (
                    "from repro.utils.mkrng import make_rng\n"
                    "\n"
                    "\n"
                    "def sample(n):\n"
                    "    rng = make_rng(7)\n"
                    "    return rng.normal(size=n)\n"
                ),
            },
        )
        assert [v.rule for v in violations] == ["JRS011"]
        assert violations[0].path.endswith("noise.py")
        assert "make_rng" in violations[0].message

    def test_jrs011_utils_rng_is_blessed(self, tmp_path):
        """utils/rng.py itself may mint generators; callers that go
        through it are clean."""
        violations = run_project_tree(
            tmp_path,
            {
                "src/repro/utils/rng.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def derive_rng(seed, label):\n"
                    "    return np.random.default_rng((seed, hash(label)))\n"
                ),
                "src/repro/sim/noise.py": (
                    "from repro.utils.rng import derive_rng\n"
                    "\n"
                    "\n"
                    "def sample(n):\n"
                    "    rng = derive_rng(7, 'noise')\n"
                    "    return rng.normal(size=n)\n"
                ),
            },
        )
        assert violations == []


class TestScoping:
    """Scoped rules must ignore the same code outside their paths."""

    @pytest.mark.parametrize(
        "fixture, code, out_of_scope_path",
        [
            ("jrs002_bad.py", "JRS002",
             "src/repro/experiments/fixture.py"),
            ("jrs005_bad.py", "JRS005",
             "src/repro/analysis/fixture.py"),
        ],
    )
    def test_out_of_scope_is_silent(
        self, fixture, code, out_of_scope_path
    ):
        violations = run_fixture(fixture, out_of_scope_path)
        assert [v for v in violations if v.rule == code] == []

    def test_jrs001_exempts_rng_module(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        config = LintConfig()
        rules = default_rules(config)
        inside = lint_source(
            source, "src/repro/utils/rng.py", rules, config
        )
        outside = lint_source(
            source, "src/repro/utils/other.py", rules, config
        )
        assert inside == []
        assert [v.rule for v in outside] == ["JRS001"]

    def test_jrs003_allowlist(self):
        source = "try:\n    pass\nexcept Exception:\n    pass\n"
        config = LintConfig(
            broad_except_allowlist=("experiments/parallel.py",)
        )
        rules = default_rules(config)
        allowed = lint_source(
            source, "src/repro/experiments/parallel.py", rules, config
        )
        elsewhere = lint_source(
            source, "src/repro/core/x.py", rules, config
        )
        assert allowed == []
        assert [v.rule for v in elsewhere] == ["JRS003"]


class TestRuleDetails:
    def test_jrs001_alias_resolution(self):
        source = (
            "import numpy.random as npr\n"
            "import random as rnd\n"
            "a = npr.randint(3)\n"
            "b = rnd.choice([1])\n"
        )
        violations = run_fixture_source(source)
        assert [v.rule for v in violations] == ["JRS001", "JRS001"]

    def test_jrs001_seeded_default_rng_ok(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
        )
        assert run_fixture_source(source) == []

    def test_jrs004_registered_literal_is_fixable_warning(self):
        source = (
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
        )
        violations = run_fixture_source(source)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.rule == "JRS004"
        assert violation.severity.value == "warning"
        assert violation.fixable
        assert violation.fix.replacement == "_names.DSSS_SCANS"
        assert violation.fix.new_import == (
            "from repro.obs import names as _names"
        )

    def test_jrs004_reuses_existing_names_alias(self):
        source = (
            "from repro.obs import names\n"
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
        )
        violations = run_fixture_source(source)
        assert violations[0].fix.replacement == "names.DSSS_SCANS"
        assert violations[0].fix.new_import is None

    def test_jrs007_module_scope_shadow_is_not_flagged(self):
        source = (
            "def worker(x):\n"
            "    return x\n"
            "def other():\n"
            "    def worker(x):\n"
            "        return x\n"
            "def go(pool, items):\n"
            "    return pool.map(worker, items)\n"
        )
        assert run_fixture_source(source) == []


def run_fixture_source(source: str):
    config = LintConfig()
    return lint_source(
        source, "src/repro/core/fixture.py",
        default_rules(config), config,
    )

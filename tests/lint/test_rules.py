"""Per-rule fixture tests: each JRS rule fires on its known-bad
fixture and stays silent on the corrected version."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, default_rules, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Virtual paths: scoped rules (JRS002, JRS005) key off the module's
#: location, so fixtures are linted as-if they lived in scope.
IN_SCOPE = {
    "JRS001": "src/repro/core/fixture.py",
    "JRS002": "src/repro/sim/fixture.py",
    "JRS003": "src/repro/core/fixture.py",
    "JRS004": "src/repro/experiments/fixture.py",
    "JRS005": "src/repro/dsss/fixture.py",
    "JRS006": "src/repro/analysis/fixture.py",
    "JRS007": "src/repro/experiments/fixture.py",
}

#: Minimum findings each bad fixture must produce for its own rule.
EXPECTED_MIN = {
    "JRS001": 7,
    "JRS002": 6,
    "JRS003": 4,
    "JRS004": 7,
    "JRS005": 2,
    "JRS006": 5,
    "JRS007": 5,
}


def run_fixture(name: str, virtual_path: str):
    source = (FIXTURES / name).read_text()
    config = LintConfig()
    return lint_source(
        source, virtual_path, default_rules(config), config
    )


@pytest.mark.parametrize("code", sorted(IN_SCOPE))
class TestRulePack:
    def test_fires_on_bad_fixture(self, code):
        violations = run_fixture(
            f"{code.lower()}_bad.py", IN_SCOPE[code]
        )
        own = [v for v in violations if v.rule == code]
        assert len(own) >= EXPECTED_MIN[code]
        others = {v.rule for v in violations} - {code}
        assert not others, f"unexpected cross-rule noise: {others}"

    def test_silent_on_good_fixture(self, code):
        violations = run_fixture(
            f"{code.lower()}_good.py", IN_SCOPE[code]
        )
        assert violations == []


class TestScoping:
    """Scoped rules must ignore the same code outside their paths."""

    @pytest.mark.parametrize(
        "fixture, code, out_of_scope_path",
        [
            ("jrs002_bad.py", "JRS002",
             "src/repro/experiments/fixture.py"),
            ("jrs005_bad.py", "JRS005",
             "src/repro/analysis/fixture.py"),
        ],
    )
    def test_out_of_scope_is_silent(
        self, fixture, code, out_of_scope_path
    ):
        violations = run_fixture(fixture, out_of_scope_path)
        assert [v for v in violations if v.rule == code] == []

    def test_jrs001_exempts_rng_module(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        config = LintConfig()
        rules = default_rules(config)
        inside = lint_source(
            source, "src/repro/utils/rng.py", rules, config
        )
        outside = lint_source(
            source, "src/repro/utils/other.py", rules, config
        )
        assert inside == []
        assert [v.rule for v in outside] == ["JRS001"]

    def test_jrs003_allowlist(self):
        source = "try:\n    pass\nexcept Exception:\n    pass\n"
        config = LintConfig(
            broad_except_allowlist=("experiments/parallel.py",)
        )
        rules = default_rules(config)
        allowed = lint_source(
            source, "src/repro/experiments/parallel.py", rules, config
        )
        elsewhere = lint_source(
            source, "src/repro/core/x.py", rules, config
        )
        assert allowed == []
        assert [v.rule for v in elsewhere] == ["JRS003"]


class TestRuleDetails:
    def test_jrs001_alias_resolution(self):
        source = (
            "import numpy.random as npr\n"
            "import random as rnd\n"
            "a = npr.randint(3)\n"
            "b = rnd.choice([1])\n"
        )
        violations = run_fixture_source(source)
        assert [v.rule for v in violations] == ["JRS001", "JRS001"]

    def test_jrs001_seeded_default_rng_ok(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
        )
        assert run_fixture_source(source) == []

    def test_jrs004_registered_literal_is_fixable_warning(self):
        source = (
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
        )
        violations = run_fixture_source(source)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.rule == "JRS004"
        assert violation.severity.value == "warning"
        assert violation.fixable
        assert violation.fix.replacement == "_names.DSSS_SCANS"
        assert violation.fix.new_import == (
            "from repro.obs import names as _names"
        )

    def test_jrs004_reuses_existing_names_alias(self):
        source = (
            "from repro.obs import names\n"
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
        )
        violations = run_fixture_source(source)
        assert violations[0].fix.replacement == "names.DSSS_SCANS"
        assert violations[0].fix.new_import is None

    def test_jrs007_module_scope_shadow_is_not_flagged(self):
        source = (
            "def worker(x):\n"
            "    return x\n"
            "def other():\n"
            "    def worker(x):\n"
            "        return x\n"
            "def go(pool, items):\n"
            "    return pool.map(worker, items)\n"
        )
        assert run_fixture_source(source) == []


def run_fixture_source(source: str):
    config = LintConfig()
    return lint_source(
        source, "src/repro/core/fixture.py",
        default_rules(config), config,
    )

"""ProjectIndex tests: module naming, import records, closures,
summary serialization, and the flow analyses phase 2 builds on."""

import ast

from repro.lint.engine import ModuleContext
from repro.lint.flow import (
    find_import_cycles,
    reachable_methods,
    tainted_boundary_params,
    tainted_rng_producers,
)
from repro.lint.graph import (
    ModuleSummary,
    ProjectIndex,
    module_name_for_path,
    summarize_module,
)


def summarize(path: str, source: str) -> ModuleSummary:
    tree = ast.parse(source, filename=path)
    return summarize_module(ModuleContext(path, source, tree))


def build_index(files: dict) -> ProjectIndex:
    return ProjectIndex(
        [summarize(path, source) for path, source in files.items()]
    )


class TestModuleNaming:
    def test_anchors_at_repro(self):
        assert (
            module_name_for_path("src/repro/dsss/phy.py")
            == "repro.dsss.phy"
        )
        assert (
            module_name_for_path("/abs/tree/src/repro/sim/core.py")
            == "repro.sim.core"
        )

    def test_package_init_maps_to_package(self):
        assert (
            module_name_for_path("src/repro/obs/__init__.py")
            == "repro.obs"
        )

    def test_outside_repro_falls_back_to_stem(self):
        assert module_name_for_path("/tmp/scratch.py") == "scratch"

    def test_package_of(self):
        assert ProjectIndex.package_of("repro.dsss.phy") == "dsss"
        assert ProjectIndex.package_of("repro") == ""


class TestImportRecords:
    SOURCE = (
        "from typing import TYPE_CHECKING\n"
        "import repro.ecc\n"
        "from repro.obs import names\n"
        "if TYPE_CHECKING:\n"
        "    from repro.experiments import runner\n"
        "def late():\n"
        "    from repro.campaigns import spec\n"
        "    return spec\n"
    )

    def test_flags(self):
        summary = summarize("src/repro/sim/x.py", self.SOURCE)
        by_target = {
            record.target: record for record in summary.imports
        }
        assert not by_target["repro.ecc"].type_checking
        assert not by_target["repro.ecc"].function_scope
        assert by_target["repro.experiments"].type_checking
        assert by_target["repro.campaigns"].function_scope
        # `from repro.obs import names` also binds the submodule.
        assert "repro.obs.names" in by_target

    def test_runtime_imports_exclude_type_checking(self):
        index = build_index({"src/repro/sim/x.py": self.SOURCE})
        targets = {
            record.target
            for record in index.runtime_imports("repro.sim.x")
        }
        assert "repro.experiments" not in targets
        assert "repro.campaigns" in targets
        lazy_free = {
            record.target
            for record in index.runtime_imports(
                "repro.sim.x", include_lazy=False
            )
        }
        assert "repro.campaigns" not in lazy_free


class TestImportClosure:
    FILES = {
        "src/repro/sim/a.py": "from repro.sim import b\n",
        "src/repro/sim/b.py": "from repro.sim import c\n",
        "src/repro/sim/c.py": "X = 1\n",
        "src/repro/sim/d.py": "Y = 2\n",
    }

    def test_transitive_closure(self):
        index = build_index(self.FILES)
        assert index.import_closure("repro.sim.a") == {
            "repro.sim.b",
            "repro.sim.c",
        }
        assert index.import_closure("repro.sim.c") == frozenset()
        assert index.import_closure("repro.sim.d") == frozenset()

    def test_project_digest_tracks_dependencies(self):
        index = build_index(self.FILES)
        changed = dict(self.FILES)
        changed["src/repro/sim/c.py"] = "X = 2\n"
        index2 = build_index(changed)
        # a depends on c transitively: digest changes.
        assert index.project_digest(
            "repro.sim.a", "salt"
        ) != index2.project_digest("repro.sim.a", "salt")
        # d is independent: digest is stable.
        assert index.project_digest(
            "repro.sim.d", "salt"
        ) == index2.project_digest("repro.sim.d", "salt")

    def test_digest_depends_on_salt(self):
        index = build_index(self.FILES)
        assert index.project_digest(
            "repro.sim.a", "pack-1"
        ) != index.project_digest("repro.sim.a", "pack-2")


class TestSummarySerde:
    def test_round_trip(self):
        source = (
            "import threading\n"
            "import numpy as np\n"
            "from dataclasses import dataclass, field\n"
            "\n"
            "def make():\n"
            "    return np.random.default_rng(3)\n"
            "\n"
            "@dataclass\n"
            "class Box:\n"
            "    rng: object = field(default_factory=make)\n"
            "\n"
            "class Runner:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "        self._t = threading.Thread(target=self._go)\n"
            "    def _go(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
        )
        summary = summarize("src/repro/sim/x.py", source)
        restored = ModuleSummary.from_json(summary.to_json())
        assert restored == summary

    def test_round_trip_survives_json_dump(self):
        import json

        source = "from repro.obs import names\nX = 1\n"
        summary = summarize("src/repro/sim/x.py", source)
        payload = json.loads(json.dumps(summary.to_json()))
        assert ModuleSummary.from_json(payload) == summary


class TestFlowAnalyses:
    def test_reachable_methods(self):
        source = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._t = threading.Thread(target=self._run)\n"
            "    def _run(self):\n"
            "        self._helper()\n"
            "    def _helper(self):\n"
            "        pass\n"
            "    def public(self):\n"
            "        pass\n"
        )
        summary = summarize("src/repro/experiments/x.py", source)
        cls = summary.classes[0]
        assert cls.thread_targets == ("_run",)
        reachable = reachable_methods(cls, cls.thread_targets)
        assert reachable == {"_run", "_helper"}

    def test_boundary_taint_propagates(self):
        index = build_index(
            {
                "src/repro/experiments/x.py": (
                    "def leaf(pool, fn, items):\n"
                    "    return pool.submit(fn, items)\n"
                    "def wrap(pool, g, items):\n"
                    "    return leaf(pool, g, items)\n"
                    "def safe(pool, n, items):\n"
                    "    return leaf(pool, None, n)\n"
                )
            }
        )
        tainted = tainted_boundary_params(index)
        assert tainted["repro.experiments.x.leaf"] == {1}
        assert tainted["repro.experiments.x.wrap"] == {1}
        assert "repro.experiments.x.safe" not in tainted

    def test_rng_producer_taint(self):
        index = build_index(
            {
                "src/repro/utils/helpers.py": (
                    "import numpy as np\n"
                    "def fresh(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                    "def indirect(seed):\n"
                    "    rng = fresh(seed)\n"
                    "    return rng\n"
                    "def unrelated():\n"
                    "    return 3\n"
                ),
                "src/repro/utils/rng.py": (
                    "import numpy as np\n"
                    "def derive_rng(seed, label):\n"
                    "    return np.random.default_rng(seed)\n"
                ),
            }
        )
        producers = tainted_rng_producers(index)
        assert "repro.utils.helpers.fresh" in producers
        assert "repro.utils.helpers.indirect" in producers
        assert "repro.utils.helpers.unrelated" not in producers
        # The blessed module never enters the taint set.
        assert "repro.utils.rng.derive_rng" not in producers

    def test_cycle_detection(self):
        index = build_index(
            {
                "src/repro/sim/a.py": "from repro.sim import b\n",
                "src/repro/sim/b.py": "from repro.sim import a\n",
                "src/repro/sim/c.py": "from repro.sim import a\n",
            }
        )
        cycles = find_import_cycles(index)
        assert cycles == [("repro.sim.a", "repro.sim.b")]

    def test_no_cycles_in_dag(self):
        index = build_index(TestImportClosure.FILES)
        assert find_import_cycles(index) == []

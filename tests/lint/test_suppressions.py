"""Suppression edge cases for the two-phase engine.

Suppressions are per-physical-line: a ``# jrsnd: noqa(CODE) --
justification`` comment silences findings anchored on *that* line
only, for per-file and cross-module rules alike, and an unjustified
noqa both fails to suppress and is itself a JRS000 finding.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, default_rules, lint_project, lint_source

JUSTIFIED = "# jrsnd: noqa({code}) -- pinned for the suppression suite"
UNJUSTIFIED = "# jrsnd: noqa({code})"


def lint(source: str, path: str = "src/repro/core/x.py"):
    config = LintConfig()
    return lint_source(source, path, default_rules(config), config)


def lint_tree(tmp_path: Path, files: dict, cache: bool = False):
    for rel, source in files.items():
        target = tmp_path / "tree" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return lint_project(
        [str(tmp_path / "tree")],
        LintConfig(),
        use_cache=cache,
        cache_dir=tmp_path / "cache",
    )


class TestMultilineStatements:
    SOURCE = (
        "import random\n"
        "value = random.randint({comment}\n"
        "    0,\n"
        "    10,\n"
        ")\n"
    )

    def test_noqa_on_first_physical_line_suppresses(self):
        source = self.SOURCE.format(
            comment="  " + JUSTIFIED.format(code="JRS001")
        )
        assert lint(source) == []

    def test_noqa_on_continuation_line_does_not(self):
        # The finding anchors on the call's first line; a comment on
        # the closing paren is on a different physical line.
        source = (
            "import random\n"
            "value = random.randint(\n"
            "    0,\n"
            "    10,\n"
            ")  " + JUSTIFIED.format(code="JRS001") + "\n"
        )
        violations = lint(source)
        assert [v.rule for v in violations] == ["JRS001"]
        assert violations[0].line == 2


class TestDecoratedDefs:
    def test_noqa_on_def_line_suppresses(self):
        source = (
            "import functools\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def f(xs=[]):  "
            + JUSTIFIED.format(code="JRS006")
            + "\n"
            "    return xs\n"
        )
        assert lint(source) == []

    def test_noqa_on_decorator_line_does_not(self):
        source = (
            "import functools\n"
            "@functools.lru_cache(maxsize=None)  "
            + JUSTIFIED.format(code="JRS006")
            + "\n"
            "def f(xs=[]):\n"
            "    return xs\n"
        )
        violations = lint(source)
        assert [v.rule for v in violations] == ["JRS006"]
        assert violations[0].line == 3


def project_cases(comment_for):
    """One minimal single-finding tree per cross-module rule, with
    ``comment_for(code)`` appended to the flagged line."""
    return {
        "JRS008": {
            "src/repro/experiments/box.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._open = True\n"
                "        self._t = threading.Thread(target=self._run)\n"
                "\n"
                "    def _run(self):\n"
                "        self._open = False  "
                + comment_for("JRS008")
                + "\n"
                "\n"
                "    def is_open(self):\n"
                "        with self._lock:\n"
                "            return self._open\n"
            )
        },
        "JRS009": {
            "src/repro/experiments/fan.py": (
                "def helper(pool, fn, items):\n"
                "    return pool.map(fn, items)\n"
                "\n"
                "\n"
                "def go(pool, items):\n"
                "    return helper(pool, lambda x: x, items)  "
                + comment_for("JRS009")
                + "\n"
            )
        },
        "JRS010": {
            "src/repro/dsss/leak.py": (
                "from repro.experiments import runner  "
                + comment_for("JRS010")
                + "\n"
                "\n"
                "USES = runner\n"
            )
        },
        "JRS011": {
            "src/repro/sim/draw.py": (
                "import numpy as np\n"
                "\n"
                "\n"
                "def draw(n):\n"
                "    rng = np.random.default_rng(7)  "
                + comment_for("JRS011")
                + "\n"
                "    return rng.normal(size=n)\n"
            )
        },
    }


PROJECT_CODES = sorted(project_cases(lambda code: "").keys())


@pytest.mark.parametrize("code", PROJECT_CODES)
class TestProjectRuleSuppression:
    def test_fires_without_noqa(self, code, tmp_path):
        files = project_cases(lambda c: "")[code]
        result = lint_tree(tmp_path, files)
        assert [v.rule for v in result.violations] == [code]

    def test_justified_noqa_suppresses(self, code, tmp_path):
        files = project_cases(
            lambda c: JUSTIFIED.format(code=c)
        )[code]
        result = lint_tree(tmp_path, files)
        assert result.violations == []

    def test_unjustified_noqa_keeps_finding_and_flags_jrs000(
        self, code, tmp_path
    ):
        files = project_cases(
            lambda c: UNJUSTIFIED.format(code=c)
        )[code]
        result = lint_tree(tmp_path, files)
        rules = sorted(v.rule for v in result.violations)
        assert rules == ["JRS000", code]


class TestSuppressionThroughCache:
    def test_jrs008_noqa_survives_warm_replay(self, tmp_path):
        """The suppression travels with the cached summary: a warm run
        replaying phase-2 findings must not resurrect it."""
        files = project_cases(
            lambda c: JUSTIFIED.format(code=c)
        )["JRS008"]
        cold = lint_tree(tmp_path, files, cache=True)
        assert cold.violations == []
        warm = lint_tree(tmp_path, files, cache=True)
        assert warm.stats.cache_hits == 1
        assert warm.stats.files_analyzed == 0
        assert warm.violations == []

    def test_unsuppressed_finding_survives_warm_replay(self, tmp_path):
        files = project_cases(lambda c: "")["JRS008"]
        cold = lint_tree(tmp_path, files, cache=True)
        warm = lint_tree(tmp_path, files, cache=True)
        assert warm.stats.files_analyzed == 0
        assert warm.violations == cold.violations
        assert [v.rule for v in warm.violations] == ["JRS008"]

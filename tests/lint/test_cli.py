"""CLI tests: exit codes, formats, --fix application and idempotency."""

import json
import shutil
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.report import JSON_SCHEMA

FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*argv: str) -> int:
    return main(list(argv))


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        assert run_cli(str(target)) == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_exit_one(self, capsys):
        code = run_cli(str(FIXTURES / "jrs006_bad.py"))
        assert code == 1
        assert "JRS006" in capsys.readouterr().out

    def test_warnings_exit_zero_unless_strict(self, tmp_path, capsys):
        target = tmp_path / "warn.py"
        target.write_text(
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
        )
        assert run_cli(str(target)) == 0
        assert run_cli(str(target), "--fail-on-warnings") == 1
        capsys.readouterr()

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("definitely/not/a/path")
        assert excinfo.value.code == 2

    def test_unknown_rule_code_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("src", "--select", "JRS999")
        assert excinfo.value.code == 2


class TestFormats:
    def test_json_schema_and_counts(self, capsys):
        code = run_cli(
            str(FIXTURES / "jrs006_bad.py"), "--format", "json"
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == JSON_SCHEMA
        assert document["files_checked"] == 1
        assert document["counts"]["errors"] >= 5
        assert document["counts"]["by_rule"]["JRS006"] >= 5
        first = document["violations"][0]
        assert set(first) == {
            "rule", "severity", "path", "line", "col",
            "message", "fixable",
        }

    def test_output_file(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = run_cli(
            str(FIXTURES / "jrs006_bad.py"),
            "--format", "json", "--output", str(report),
        )
        assert code == 1
        assert capsys.readouterr().out == ""
        assert json.loads(report.read_text())["schema"] == JSON_SCHEMA

    def test_sarif_format(self, tmp_path, capsys):
        code = run_cli(
            str(FIXTURES / "jrs006_bad.py"),
            "--format", "sarif",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        results = document["runs"][0]["results"]
        assert all(r["ruleId"] == "JRS006" for r in results)

    def test_sarif_sidecar_with_json_output(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        sarif = tmp_path / "report.sarif"
        code = run_cli(
            str(FIXTURES / "jrs006_bad.py"),
            "--format", "json", "--output", str(report),
            "--sarif", str(sarif),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 1
        assert capsys.readouterr().out == ""
        assert json.loads(report.read_text())["schema"] == JSON_SCHEMA
        assert json.loads(sarif.read_text())["version"] == "2.1.0"

    def test_list_rules(self, capsys):
        assert run_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for code in (
            "JRS001", "JRS002", "JRS003", "JRS004",
            "JRS005", "JRS006", "JRS007",
            "JRS008", "JRS009", "JRS010", "JRS011",
        ):
            assert code in out
        assert "justification" in out


class TestEngineFlags:
    def test_jobs_parallel_matches_serial(self, tmp_path, capsys):
        serial = run_cli(
            str(FIXTURES / "jrs006_bad.py"),
            "--no-cache", "--format", "json",
        )
        out_serial = capsys.readouterr().out
        parallel = run_cli(
            str(FIXTURES / "jrs006_bad.py"),
            "--no-cache", "--format", "json", "--jobs", "2",
        )
        out_parallel = capsys.readouterr().out
        assert serial == parallel == 1
        assert (
            json.loads(out_serial)["violations"]
            == json.loads(out_parallel)["violations"]
        )

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(str(FIXTURES / "jrs006_bad.py"), "--jobs", "0")
        assert excinfo.value.code == 2

    def test_no_cache_leaves_no_cache_dir(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        cache_dir = tmp_path / "cache"
        assert run_cli(
            str(target), "--no-cache", "--cache-dir", str(cache_dir)
        ) == 0
        assert not cache_dir.exists()
        capsys.readouterr()

    def test_stats_line_reports_cache_hits(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        cache_dir = tmp_path / "cache"
        run_cli(str(target), "--cache-dir", str(cache_dir))
        capsys.readouterr()
        run_cli(str(target), "--cache-dir", str(cache_dir))
        captured = capsys.readouterr()
        assert "[repro.lint]" in captured.err
        assert "1 cache hit(s)" in captured.err
        assert "project phase cached" in captured.err


class TestFix:
    def fix_copy(self, tmp_path) -> Path:
        target = tmp_path / "fix_input.py"
        shutil.copyfile(FIXTURES / "fix_input.py", target)
        return target

    def test_fix_rewrites_registered_literals(self, tmp_path, capsys):
        target = self.fix_copy(tmp_path)
        assert run_cli(str(target), "--fix") == 0
        fixed = target.read_text()
        assert "from repro.obs import names as _names" in fixed
        assert "_names.DSSS_SCANS" in fixed
        assert '_names.DNDP_ESTABLISHED, 2' in fixed
        assert "_names.MNDP_RECOVERY_HOPS" in fixed
        assert "_names.SIM_TIME" in fixed
        assert '"dsss.scans"' not in fixed
        capsys.readouterr()

    def test_fix_is_idempotent(self, tmp_path, capsys):
        target = self.fix_copy(tmp_path)
        run_cli(str(target), "--fix")
        once = target.read_text()
        run_cli(str(target), "--fix")
        assert target.read_text() == once
        capsys.readouterr()

    def test_fixed_file_parses_and_is_clean(self, tmp_path, capsys):
        target = self.fix_copy(tmp_path)
        run_cli(str(target), "--fix")
        compile(target.read_text(), str(target), "exec")
        assert run_cli(str(target), "--fail-on-warnings") == 0
        capsys.readouterr()

    def test_fix_leaves_errors_in_report(self, tmp_path, capsys):
        target = tmp_path / "still_bad.py"
        target.write_text(
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
            'current().inc("dsss.scnas")\n'
        )
        code = run_cli(str(target), "--fix")
        assert code == 1  # the typo'd name is not mechanically fixable
        assert "_names.DSSS_SCANS" in target.read_text()
        assert '"dsss.scnas"' in target.read_text()
        capsys.readouterr()

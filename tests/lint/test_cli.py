"""CLI tests: exit codes, formats, --fix application and idempotency."""

import json
import shutil
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.report import JSON_SCHEMA

FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*argv: str) -> int:
    return main(list(argv))


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        assert run_cli(str(target)) == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_exit_one(self, capsys):
        code = run_cli(str(FIXTURES / "jrs006_bad.py"))
        assert code == 1
        assert "JRS006" in capsys.readouterr().out

    def test_warnings_exit_zero_unless_strict(self, tmp_path, capsys):
        target = tmp_path / "warn.py"
        target.write_text(
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
        )
        assert run_cli(str(target)) == 0
        assert run_cli(str(target), "--fail-on-warnings") == 1
        capsys.readouterr()

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("definitely/not/a/path")
        assert excinfo.value.code == 2

    def test_unknown_rule_code_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("src", "--select", "JRS999")
        assert excinfo.value.code == 2


class TestFormats:
    def test_json_schema_and_counts(self, capsys):
        code = run_cli(
            str(FIXTURES / "jrs006_bad.py"), "--format", "json"
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == JSON_SCHEMA
        assert document["files_checked"] == 1
        assert document["counts"]["errors"] >= 5
        assert document["counts"]["by_rule"]["JRS006"] >= 5
        first = document["violations"][0]
        assert set(first) == {
            "rule", "severity", "path", "line", "col",
            "message", "fixable",
        }

    def test_output_file(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = run_cli(
            str(FIXTURES / "jrs006_bad.py"),
            "--format", "json", "--output", str(report),
        )
        assert code == 1
        assert capsys.readouterr().out == ""
        assert json.loads(report.read_text())["schema"] == JSON_SCHEMA

    def test_list_rules(self, capsys):
        assert run_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for code in (
            "JRS001", "JRS002", "JRS003", "JRS004",
            "JRS005", "JRS006", "JRS007",
        ):
            assert code in out
        assert "justification" in out


class TestFix:
    def fix_copy(self, tmp_path) -> Path:
        target = tmp_path / "fix_input.py"
        shutil.copyfile(FIXTURES / "fix_input.py", target)
        return target

    def test_fix_rewrites_registered_literals(self, tmp_path, capsys):
        target = self.fix_copy(tmp_path)
        assert run_cli(str(target), "--fix") == 0
        fixed = target.read_text()
        assert "from repro.obs import names as _names" in fixed
        assert "_names.DSSS_SCANS" in fixed
        assert '_names.DNDP_ESTABLISHED, 2' in fixed
        assert "_names.MNDP_RECOVERY_HOPS" in fixed
        assert "_names.SIM_TIME" in fixed
        assert '"dsss.scans"' not in fixed
        capsys.readouterr()

    def test_fix_is_idempotent(self, tmp_path, capsys):
        target = self.fix_copy(tmp_path)
        run_cli(str(target), "--fix")
        once = target.read_text()
        run_cli(str(target), "--fix")
        assert target.read_text() == once
        capsys.readouterr()

    def test_fixed_file_parses_and_is_clean(self, tmp_path, capsys):
        target = self.fix_copy(tmp_path)
        run_cli(str(target), "--fix")
        compile(target.read_text(), str(target), "exec")
        assert run_cli(str(target), "--fail-on-warnings") == 0
        capsys.readouterr()

    def test_fix_leaves_errors_in_report(self, tmp_path, capsys):
        target = tmp_path / "still_bad.py"
        target.write_text(
            "from repro.obs import current\n"
            'current().inc("dsss.scans")\n'
            'current().inc("dsss.scnas")\n'
        )
        code = run_cli(str(target), "--fix")
        assert code == 1  # the typo'd name is not mechanically fixable
        assert "_names.DSSS_SCANS" in target.read_text()
        assert '"dsss.scnas"' in target.read_text()
        capsys.readouterr()

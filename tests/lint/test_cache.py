"""Incremental-cache tests.

The invalidation contract is the acceptance criterion of the two-phase
engine: a warm run re-analyzes *only* files whose content changed, and
re-runs the project phase over exactly the files whose transitive
import closure reaches a changed file.
"""

import json
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_project

#: a -> b -> c, with d independent.  Editing c must dirty {a, b, c}
#: but leave d's cross-module findings replayable from cache.
TREE = {
    "src/repro/sim/a.py": "from repro.sim import b\n\nX = b.Y\n",
    "src/repro/sim/b.py": "from repro.sim import c\n\nY = c.Z\n",
    "src/repro/sim/c.py": "Z = 1\n",
    "src/repro/sim/d.py": "W = 2\n",
}


@pytest.fixture()
def tree(tmp_path):
    for rel, source in TREE.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def run(tree: Path, config: LintConfig = None, **kwargs):
    return lint_project(
        [str(tree / "src")],
        config or LintConfig(),
        cache_dir=tree / "cache",
        **kwargs,
    )


class TestWarmAndCold:
    def test_cold_then_warm(self, tree):
        cold = run(tree)
        assert cold.stats.files_checked == 4
        assert cold.stats.files_analyzed == 4
        assert cold.stats.cache_hits == 0
        assert cold.stats.project_phase_ran

        warm = run(tree)
        assert warm.stats.files_checked == 4
        assert warm.stats.files_analyzed == 0
        assert warm.stats.cache_hits == 4
        assert not warm.stats.project_phase_ran
        assert warm.stats.project_reanalyzed == 0
        assert warm.violations == cold.violations

    def test_warm_run_replays_cached_violations(self, tree):
        bad = tree / "src/repro/sim/e.py"
        bad.write_text(
            "import numpy as np\n\nrng = np.random.default_rng()\n"
        )
        cold = run(tree)
        assert cold.violations, "seed violation expected"
        warm = run(tree)
        assert warm.stats.files_analyzed == 0
        assert warm.violations == cold.violations

    def test_use_cache_false_never_touches_disk(self, tree):
        result = run(tree, use_cache=False)
        assert result.stats.files_analyzed == 4
        assert result.stats.cache_hits == 0
        assert not (tree / "cache").exists()


class TestInvalidation:
    def test_edit_invalidates_import_reachable_set(self, tree):
        run(tree)
        (tree / "src/repro/sim/c.py").write_text("Z = 2\n")
        result = run(tree)
        # Only c was re-parsed...
        assert result.stats.files_analyzed == 1
        assert result.stats.cache_hits == 3
        # ...but the project phase re-covered everything that can
        # reach c through imports: a, b, and c itself — never d.
        assert result.stats.project_phase_ran
        assert result.stats.project_reanalyzed == 3

    def test_edit_of_leaf_dirties_only_itself(self, tree):
        run(tree)
        (tree / "src/repro/sim/d.py").write_text("W = 3\n")
        result = run(tree)
        assert result.stats.files_analyzed == 1
        assert result.stats.project_reanalyzed == 1

    def test_new_file_runs_project_phase(self, tree):
        run(tree)
        (tree / "src/repro/sim/e.py").write_text("V = 4\n")
        result = run(tree)
        assert result.stats.files_checked == 5
        assert result.stats.files_analyzed == 1
        assert result.stats.project_phase_ran

    def test_config_change_discards_cache(self, tree):
        run(tree)
        result = run(tree, config=LintConfig(select={"JRS010"}))
        assert result.stats.files_analyzed == 4
        assert result.stats.cache_hits == 0

    def test_touch_without_change_stays_warm(self, tree):
        run(tree)
        path = tree / "src/repro/sim/c.py"
        path.write_text(path.read_text())  # mtime moves, hash doesn't
        result = run(tree)
        assert result.stats.files_analyzed == 0
        assert result.stats.cache_hits == 4


class TestCacheFile:
    def test_corrupt_cache_degrades_to_cold(self, tree):
        run(tree)
        (tree / "cache" / "cache.json").write_text("{not json")
        result = run(tree)
        assert result.stats.files_analyzed == 4
        assert result.stats.cache_hits == 0
        # ...and the cold run repaired the file for the next run.
        assert run(tree).stats.cache_hits == 4

    def test_pack_key_mismatch_discards_entries(self, tree):
        run(tree)
        cache_file = tree / "cache" / "cache.json"
        payload = json.loads(cache_file.read_text())
        payload["pack_key"] = "stale-pack"
        cache_file.write_text(json.dumps(payload))
        result = run(tree)
        assert result.stats.cache_hits == 0

    def test_deleted_files_are_pruned(self, tree):
        run(tree)
        (tree / "src/repro/sim/d.py").unlink()
        run(tree)
        payload = json.loads(
            (tree / "cache" / "cache.json").read_text()
        )
        assert not any(
            path.endswith("d.py") for path in payload["entries"]
        )
        assert len(payload["entries"]) == 3

"""Meta-test: the repository's own source passes its lint gate.

This is the CI contract in miniature — if a change introduces an
unseeded RNG, a wall-clock read, a broad except, or a typo'd metric
name anywhere under ``src/``, this test fails locally before the lint
job does.
"""

import subprocess
import sys
from pathlib import Path

from repro.lint import LintConfig, default_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestRepoClean:
    def test_src_tree_has_no_findings(self):
        config = LintConfig()
        violations, files_checked = lint_paths(
            [str(SRC)], default_rules(config), config
        )
        assert files_checked > 80
        assert violations == [], "\n".join(
            f"{v.path}:{v.line} {v.rule} {v.message}"
            for v in violations
        )

    def test_module_entry_point_exits_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(SRC)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

"""Meta-test: the repository's own source passes its lint gate.

This is the CI contract in miniature — if a change introduces an
unseeded RNG, a wall-clock read, a broad except, a typo'd metric name,
unlocked thread-shared state, a layering breach, or an in-place
Generator anywhere under ``src/``, this test fails locally before the
lint job does.  The seeded mutation tests prove the cross-module rules
actually bite on the real tree, not just on fixtures.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_project

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

#: The gate must never silently analyze a stale subset: the floor only
#: grows.  Bump it when the tree does; never lower it.
FILES_CHECKED_FLOOR = 102


def count_src_files() -> int:
    return sum(
        1
        for path in SRC.rglob("*.py")
        if "__pycache__" not in path.parts
    )


class TestRepoClean:
    def test_src_tree_has_no_findings(self):
        config = LintConfig()
        result = lint_project([str(SRC)], config, use_cache=False)
        expected = count_src_files()
        assert result.stats.files_checked == expected
        assert expected >= FILES_CHECKED_FLOOR, (
            "src/ shrank below the pinned floor — the lint gate may "
            "be analyzing a stale subset"
        )
        assert result.violations == [], "\n".join(
            f"{v.path}:{v.line} {v.rule} {v.message}"
            for v in result.violations
        )

    def test_module_entry_point_exits_clean(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.lint", str(SRC),
                "--cache-dir", str(tmp_path / "cache"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout
        assert "[repro.lint]" in result.stderr


@pytest.fixture()
def src_copy(tmp_path):
    """A mutable copy of the real src/ tree."""
    target = tmp_path / "src"
    shutil.copytree(
        SRC, target, ignore=shutil.ignore_patterns("__pycache__")
    )
    return target


def run_lint(tree: Path, select: str):
    config = LintConfig(select={select})
    return lint_project([str(tree)], config, use_cache=False).violations


class TestSeededMutations:
    """Remove a known-good safeguard from the real tree; the matching
    cross-module rule must catch it."""

    def test_jrs008_catches_removed_lock(self, src_copy):
        pool = src_copy / "repro" / "experiments" / "pool.py"
        lines = pool.read_text().splitlines(keepends=True)
        # Unwrap the first `with self._lock:` block inside close().
        start = next(
            i for i, line in enumerate(lines)
            if line.lstrip().startswith("def close(")
        )
        index = next(
            i
            for i, line in enumerate(lines[start:], start)
            if line.strip() == "with self._lock:"
        )
        indent = len(lines[index]) - len(lines[index].lstrip())
        del lines[index]
        cursor = index
        while cursor < len(lines):
            line = lines[cursor]
            if line.strip():
                if len(line) - len(line.lstrip()) <= indent:
                    break
                lines[cursor] = line[4:]
            cursor += 1
        pool.write_text("".join(lines))
        violations = run_lint(src_copy, "JRS008")
        assert violations, "JRS008 missed the removed lock"
        assert all(v.rule == "JRS008" for v in violations)
        assert any("pool.py" in v.path for v in violations)

    def test_jrs008_clean_tree_is_silent(self, src_copy):
        assert run_lint(src_copy, "JRS008") == []

    def test_jrs010_catches_illegal_dsss_import(self, src_copy):
        module = src_copy / "repro" / "dsss" / "spreader.py"
        module.write_text(
            module.read_text()
            + "\nfrom repro.experiments import runner  # noqa-free\n"
        )
        violations = run_lint(src_copy, "JRS010")
        # The illegal edge is reported directly, and — because
        # experiments legitimately imports dsss — it also closes an
        # import cycle, which JRS010 reports separately.
        assert violations, "JRS010 missed the illegal import"
        assert all(v.rule == "JRS010" for v in violations)
        layering = [
            v
            for v in violations
            if "'dsss' must not import 'experiments'" in v.message
        ]
        assert len(layering) == 1
        assert "spreader.py" in layering[0].path

"""Unit tests for session spread-code derivation."""

import pytest

from repro.crypto.session import derive_session_code
from repro.errors import ConfigurationError


class TestDerivation:
    def test_symmetric_in_nonces(self):
        a = derive_session_code(b"key" * 11, 12345, 678, 512)
        b = derive_session_code(b"key" * 11, 678, 12345, 512)
        assert a == b

    def test_length(self):
        code = derive_session_code(b"key", 1, 2, 512)
        assert code.length == 512

    def test_odd_length(self):
        assert derive_session_code(b"key", 1, 2, 100).length == 100

    def test_key_separation(self):
        a = derive_session_code(b"key-a", 1, 2, 128)
        b = derive_session_code(b"key-b", 1, 2, 128)
        assert a != b

    def test_nonce_separation(self):
        a = derive_session_code(b"key", 1, 2, 128)
        b = derive_session_code(b"key", 1, 3, 128)
        assert a != b

    def test_xor_collision(self):
        """Only the XOR of the nonces matters (the paper's h_K(nA ^ nB))."""
        a = derive_session_code(b"key", 0b1100, 0b1010, 128)
        b = derive_session_code(b"key", 0b0110, 0b0000, 128)
        assert a == b  # 1100^1010 == 0110^0000

    def test_label(self):
        code = derive_session_code(b"key", 1, 2, 64, label=("s", 1, 2))
        assert code.code_id == ("s", 1, 2)

    def test_default_label(self):
        assert derive_session_code(b"key", 1, 2, 64).code_id == "session"

    def test_rejects_empty_key(self):
        with pytest.raises(ConfigurationError):
            derive_session_code(b"", 1, 2, 64)

    def test_rejects_negative_nonce(self):
        with pytest.raises(ConfigurationError):
            derive_session_code(b"key", -1, 2, 64)

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            derive_session_code(b"key", 1, 2, 0)

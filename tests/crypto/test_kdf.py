"""Unit tests for key derivation."""

import pytest

from repro.crypto.kdf import derive_bytes, expand_bytes
from repro.errors import ConfigurationError


class TestDeriveBytes:
    def test_deterministic(self):
        assert derive_bytes(b"k", "l", 1) == derive_bytes(b"k", "l", 1)

    def test_label_separation(self):
        assert derive_bytes(b"k", "a") != derive_bytes(b"k", "b")

    def test_context_separation(self):
        assert derive_bytes(b"k", "l", 1) != derive_bytes(b"k", "l", 2)

    def test_context_types(self):
        a = derive_bytes(b"k", "l", b"xy", "s", 7)
        assert len(a) == 32

    def test_no_concatenation_ambiguity(self):
        """Length-prefixed encoding: ("ab","c") != ("a","bc")."""
        assert derive_bytes(b"k", "l", "ab", "c") != derive_bytes(
            b"k", "l", "a", "bc"
        )

    def test_key_separation(self):
        assert derive_bytes(b"k1", "l") != derive_bytes(b"k2", "l")

    def test_rejects_negative_int(self):
        with pytest.raises(ConfigurationError):
            derive_bytes(b"k", "l", -1)

    def test_rejects_non_bytes_key(self):
        with pytest.raises(ConfigurationError):
            derive_bytes("key", "l")

    def test_rejects_unsupported_context(self):
        with pytest.raises(ConfigurationError):
            derive_bytes(b"k", "l", 1.5)


class TestExpandBytes:
    @pytest.mark.parametrize("length", [1, 31, 32, 33, 100])
    def test_length(self, length):
        assert len(expand_bytes(b"seed", length)) == length

    def test_deterministic(self):
        assert expand_bytes(b"s", 64) == expand_bytes(b"s", 64)

    def test_prefix_property(self):
        assert expand_bytes(b"s", 64)[:16] == expand_bytes(b"s", 16)

    def test_label_separation(self):
        assert expand_bytes(b"s", 32, "a") != expand_bytes(b"s", 32, "b")

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            expand_bytes(b"s", 0)

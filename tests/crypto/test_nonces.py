"""Unit tests for nonces and replay protection."""

import pytest

from repro.crypto.nonces import NonceGenerator, ReplayCache
from repro.errors import ConfigurationError


class TestNonceGenerator:
    def test_range(self, rng):
        gen = NonceGenerator(rng, nonce_bits=20)
        for _ in range(200):
            nonce = gen.next()
            assert 0 <= nonce < 1 << 20

    def test_to_bytes_width(self, rng):
        gen = NonceGenerator(rng, nonce_bits=20)
        assert len(gen.to_bytes(5)) == 3

    def test_to_bytes_rejects_overflow(self, rng):
        gen = NonceGenerator(rng, nonce_bits=8)
        with pytest.raises(ConfigurationError):
            gen.to_bytes(256)

    def test_rejects_bad_width(self, rng):
        with pytest.raises(ConfigurationError):
            NonceGenerator(rng, nonce_bits=4)

    def test_mostly_unique(self, rng):
        gen = NonceGenerator(rng, nonce_bits=32)
        values = [gen.next() for _ in range(1000)]
        assert len(set(values)) == 1000


class TestReplayCache:
    def test_first_time_false(self):
        cache = ReplayCache()
        assert not cache.seen_before("peer", 1)

    def test_second_time_true(self):
        cache = ReplayCache()
        cache.seen_before("peer", 1)
        assert cache.seen_before("peer", 1)

    def test_scoped_by_peer(self):
        cache = ReplayCache()
        cache.seen_before("a", 1)
        assert not cache.seen_before("b", 1)

    def test_eviction(self):
        cache = ReplayCache(capacity=2)
        cache.seen_before("a")
        cache.seen_before("b")
        cache.seen_before("c")  # evicts "a"
        assert not cache.seen_before("a")

    def test_lru_refresh(self):
        cache = ReplayCache(capacity=2)
        cache.seen_before("a")
        cache.seen_before("b")
        cache.seen_before("a")  # refresh "a"
        cache.seen_before("c")  # evicts "b"
        assert cache.seen_before("a")
        assert not cache.seen_before("b")

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplayCache().seen_before()

    def test_len(self):
        cache = ReplayCache()
        cache.seen_before("x")
        assert len(cache) == 1

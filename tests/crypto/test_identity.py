"""Unit tests for the simulated IBC infrastructure."""

import pytest

from repro.crypto.identity import NodeId, TrustedAuthority
from repro.errors import AuthenticationError, ConfigurationError


@pytest.fixture
def authority():
    return TrustedAuthority(b"master", id_bits=16)


class TestNodeId:
    def test_value_and_bits(self):
        node = NodeId(300, id_bits=16)
        assert node.value == 300
        assert node.id_bits == 16

    def test_to_bytes_width(self):
        assert len(NodeId(1, id_bits=16).to_bytes()) == 2
        assert len(NodeId(1, id_bits=20).to_bytes()) == 3

    def test_ordering(self):
        assert NodeId(1) < NodeId(2)

    def test_equality_includes_width(self):
        assert NodeId(1, 16) != NodeId(1, 24)

    def test_hashable(self):
        assert len({NodeId(1), NodeId(1), NodeId(2)}) == 2

    def test_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            NodeId(1 << 16, id_bits=16)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            NodeId(-1)


class TestPairwiseKeys:
    def test_agreement(self, authority):
        a, b = authority.make_id(1), authority.make_id(2)
        ka = authority.issue_private_key(a)
        kb = authority.issue_private_key(b)
        assert ka.shared_key(b) == kb.shared_key(a)

    def test_pair_uniqueness(self, authority):
        a, b, c = (authority.make_id(i) for i in (1, 2, 3))
        ka = authority.issue_private_key(a)
        assert ka.shared_key(b) != ka.shared_key(c)

    def test_authority_computes_same_key(self, authority):
        a, b = authority.make_id(1), authority.make_id(2)
        ka = authority.issue_private_key(a)
        assert ka.shared_key(b) == authority.pairwise_key(a, b)

    def test_no_self_key(self, authority):
        a = authority.make_id(1)
        ka = authority.issue_private_key(a)
        with pytest.raises(ConfigurationError):
            ka.shared_key(a)

    def test_different_authorities_differ(self):
        auth1 = TrustedAuthority(b"m1")
        auth2 = TrustedAuthority(b"m2")
        a1 = auth1.issue_private_key(auth1.make_id(1))
        a2 = auth2.issue_private_key(auth2.make_id(1))
        assert a1.shared_key(auth1.make_id(2)) != a2.shared_key(
            auth2.make_id(2)
        )

    def test_id_width_mismatch_rejected(self, authority):
        wrong = NodeId(1, id_bits=24)
        with pytest.raises(AuthenticationError):
            authority.issue_private_key(wrong)


class TestAuthority:
    def test_rejects_empty_master(self):
        with pytest.raises(ConfigurationError):
            TrustedAuthority(b"")

    def test_public_parameters_id_bits(self, authority):
        assert authority.public_parameters().id_bits == 16

    def test_pairwise_key_identical_ids_rejected(self, authority):
        a = authority.make_id(1)
        with pytest.raises(ConfigurationError):
            authority.pairwise_key(a, a)

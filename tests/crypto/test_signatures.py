"""Unit tests for ID-based signatures."""

import pytest

from repro.crypto.identity import TrustedAuthority
from repro.crypto.signatures import IdentitySignature, SignatureScheme
from repro.errors import AuthenticationError, ConfigurationError


@pytest.fixture
def setup():
    authority = TrustedAuthority(b"master")
    scheme = SignatureScheme(authority.public_parameters())
    a = authority.make_id(1)
    b = authority.make_id(2)
    return authority, scheme, a, b


class TestSignVerify:
    def test_valid_signature(self, setup):
        authority, scheme, a, _ = setup
        key = authority.issue_private_key(a)
        sig = scheme.sign(key, b"hello")
        assert scheme.verify(a, b"hello", sig)

    def test_wrong_message(self, setup):
        authority, scheme, a, _ = setup
        key = authority.issue_private_key(a)
        sig = scheme.sign(key, b"hello")
        assert not scheme.verify(a, b"hellx", sig)

    def test_wrong_signer(self, setup):
        authority, scheme, a, b = setup
        key = authority.issue_private_key(a)
        sig = scheme.sign(key, b"hello")
        assert not scheme.verify(b, b"hello", sig)

    def test_forged_tag(self, setup):
        authority, scheme, a, _ = setup
        fake = IdentitySignature(a, bytes(32))
        assert not scheme.verify(a, b"hello", fake)

    def test_signature_not_transferable(self, setup):
        """A's signature does not verify under B even for same message."""
        authority, scheme, a, b = setup
        key_a = authority.issue_private_key(a)
        sig = scheme.sign(key_a, b"msg")
        relabeled = IdentitySignature(b, sig.tag)
        assert not scheme.verify(b, b"msg", relabeled)

    def test_require_valid_raises(self, setup):
        authority, scheme, a, _ = setup
        fake = IdentitySignature(a, bytes(32))
        with pytest.raises(AuthenticationError):
            scheme.require_valid(a, b"m", fake)

    def test_sign_rejects_non_bytes(self, setup):
        authority, scheme, a, _ = setup
        key = authority.issue_private_key(a)
        with pytest.raises(ConfigurationError):
            scheme.sign(key, "text")


class TestWireFormat:
    def test_padded_to_l_sig(self, setup):
        authority, scheme, a, _ = setup
        key = authority.issue_private_key(a)
        sig = scheme.sign(key, b"m")
        wire = sig.wire_bytes(672)
        assert len(wire) == 84  # ceil(672 / 8)
        assert wire[:32] == sig.tag

    def test_padding_deterministic(self, setup):
        authority, scheme, a, _ = setup
        key = authority.issue_private_key(a)
        sig = scheme.sign(key, b"m")
        assert sig.wire_bytes(672) == sig.wire_bytes(672)

    def test_too_small_l_sig(self, setup):
        authority, scheme, a, _ = setup
        sig = scheme.sign(authority.issue_private_key(a), b"m")
        with pytest.raises(ConfigurationError):
            sig.wire_bytes(64)

    def test_tag_length_checked(self, setup):
        _, _, a, _ = setup
        with pytest.raises(ConfigurationError):
            IdentitySignature(a, b"short")

"""Unit tests for the crypto timing model."""

import pytest

from repro.crypto.timing import CryptoTimingModel
from repro.errors import ConfigurationError


class TestDefaults:
    def test_table1_values(self):
        model = CryptoTimingModel()
        assert model.t_key == pytest.approx(11e-3)
        assert model.t_sig == pytest.approx(5.7e-3)
        assert model.t_ver == pytest.approx(35.5e-3)

    def test_handshake_cost(self):
        assert CryptoTimingModel().handshake_key_cost() == pytest.approx(
            22e-3
        )

    def test_mndp_hop_cost(self):
        model = CryptoTimingModel()
        assert model.mndp_hop_cost(2) == pytest.approx(
            2 * 35.5e-3 + 5.7e-3
        )

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CryptoTimingModel(t_key=-1e-3)

    def test_rejects_negative_verification_count(self):
        with pytest.raises(ConfigurationError):
            CryptoTimingModel().mndp_hop_cost(-1)

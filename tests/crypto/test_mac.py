"""Unit tests for truncated MACs."""

import pytest

from repro.crypto.mac import MessageAuthenticator
from repro.errors import ConfigurationError


class TestTagging:
    def test_roundtrip(self):
        mac = MessageAuthenticator(b"key" * 11)
        tag = mac.tag(b"id", b"nonce")
        assert mac.verify(tag, b"id", b"nonce")

    def test_tamper_detected(self):
        mac = MessageAuthenticator(b"key" * 11)
        tag = mac.tag(b"id", b"nonce")
        assert not mac.verify(tag, b"id", b"nonc3")

    def test_key_separation(self):
        a = MessageAuthenticator(b"key-a")
        b = MessageAuthenticator(b"key-b")
        assert a.tag(b"m") != b.tag(b"m")

    def test_length_delimited_inputs(self):
        mac = MessageAuthenticator(b"key")
        assert mac.tag(b"ab", b"c") != mac.tag(b"a", b"bc")

    def test_tag_width_44_bits(self):
        mac = MessageAuthenticator(b"key", tag_bits=44)
        tag = mac.tag(b"m")
        assert len(tag) == 6  # ceil(44/8)
        assert tag[-1] & 0x0F == 0  # trailing 4 bits masked

    def test_tag_width_full_bytes(self):
        mac = MessageAuthenticator(b"key", tag_bits=64)
        assert len(mac.tag(b"m")) == 8

    def test_rejects_empty_key(self):
        with pytest.raises(ConfigurationError):
            MessageAuthenticator(b"")

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            MessageAuthenticator(b"k", tag_bits=4)

    def test_rejects_non_bytes_part(self):
        mac = MessageAuthenticator(b"key")
        with pytest.raises(ConfigurationError):
            mac.tag("text")

    def test_tag_bits_property(self):
        assert MessageAuthenticator(b"k", tag_bits=44).tag_bits == 44

"""Security-behavior tests: active attacks against the event protocol.

The jamming figures measure availability; these tests check the
*authentication* claims — an adversary without the right private key
cannot be accepted as a logical neighbor, replays are dropped, and the
event-level DoS flood is contained by revocation.
"""

import pytest

from repro.adversary.dos import EventDoSInjector
from repro.core.messages import AuthRequest, Confirm, Hello
from repro.crypto.identity import TrustedAuthority
from repro.crypto.mac import MessageAuthenticator
from repro.experiments.scenarios import build_event_network
from repro.utils.rng import derive_rng


class TestImpersonation:
    def test_wrong_key_auth_request_rejected(self, small_config):
        """An attacker replays a HELLO/CONFIRM exchange but cannot
        produce a valid MAC for the claimed identity."""
        net = build_event_network(small_config, seed=11)
        victim = net.nodes[0]
        victim_code = next(iter(victim.revocation.active_codes()))
        claimed = net.nodes[1].node_id  # the identity being impersonated

        # A foreign authority key (attacker's own material).
        rogue_authority = TrustedAuthority(b"rogue")
        rogue_key = rogue_authority.issue_private_key(
            rogue_authority.make_id(claimed.value)
        )

        net.medium.register_node(50, lambda: victim.position)
        # Step 1: fake HELLO so the victim opens a responder session.
        schedule = victim._schedule
        window = schedule.window(schedule.first_index() + 1)
        net.simulator.call_at(
            window.buffer_start + 1e-5,
            net.medium.transmit, 50, victim_code, Hello(claimed), 1e-4,
        )
        # The copy sits at the start of the buffer, so it is decoded
        # shortly after buffering ends; stop just after that moment so
        # the responder's CONFIRM window (length t_p) is still open.
        net.simulator.run(until=window.buffer_end + 0.01)
        session = victim.session_with(claimed)
        assert session is not None  # HELLO accepted (it carries no proof)
        # The responder is confirming and monitors the code in real
        # time, so the forged AUTH reaches the MAC check.
        assert session.state.name == "CONFIRMING"

        # Step 2: forged AUTH_REQUEST under a wrong pairwise key.
        bad_shared = rogue_key.shared_key(
            rogue_authority.make_id(victim.node_id.value)
        )
        mac = MessageAuthenticator(bad_shared, small_config.mac_bits)
        from repro.core.messages import nonce_bytes

        forged = AuthRequest(
            sender=claimed,
            nonce=7,
            mac_tag=mac.tag(claimed.to_bytes(), nonce_bytes(7)),
        )
        net.medium.transmit(50, victim_code, forged, 1e-4)
        net.simulator.run(until=net.simulator.now + 1.0)

        assert claimed not in victim.logical_neighbors
        assert net.trace.counter("dndp.bad_mac_ignored") >= 1

    def test_confirm_spoofing_cannot_complete(self, small_config):
        """Spoofed CONFIRMs make the victim start the handshake, but it
        dies at the MAC stage; no logical neighbor is recorded."""
        net = build_event_network(small_config, seed=11)
        victim = net.nodes[0]
        victim_code = next(iter(victim.revocation.active_codes()))
        phantom = net.authority.make_id(999)  # never-deployed identity

        net.medium.register_node(51, lambda: victim.position)
        schedule = victim._schedule
        window = schedule.window(schedule.first_index() + 1)
        net.simulator.call_at(
            window.buffer_start + 1e-5,
            net.medium.transmit, 51, victim_code, Confirm(phantom), 1e-4,
        )
        net.simulator.run(until=window.processing_done + 5.0)
        # The victim sent an AUTH_REQUEST into the void; nothing valid
        # ever came back.
        assert phantom not in victim.logical_neighbors


class TestReplay:
    def test_auth_replay_dropped(self, small_config):
        """Replaying a captured AUTH_REQUEST does not re-trigger the
        responder handshake."""
        net = build_event_network(small_config, seed=11)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=30.0)
        # Pick an established pair and replay the initiator's request.
        pair = next(iter(net.logical_pairs()))
        a, b = net.nodes[pair[0]], net.nodes[pair[1]]
        session = b.session_with(a.node_id)
        assert session is not None
        # Craft the exact request A sent (same nonce, same MAC).
        from repro.core.messages import nonce_bytes

        initiator_session = a.session_with(b.node_id)
        mac = MessageAuthenticator(
            initiator_session.shared_key, small_config.mac_bits
        )
        nonce = initiator_session.my_nonce
        replayed = AuthRequest(
            sender=a.node_id,
            nonce=nonce,
            mac_tag=mac.tag(a.node_id.to_bytes(), nonce_bytes(nonce)),
        )
        dndp_before = b.outcome().dndp_count
        code = next(iter(initiator_session.codes))
        net.medium.register_node(52, lambda: b.position)
        net.medium.transmit(52, code, replayed, 1e-4)
        net.simulator.run(until=net.simulator.now + 1.0)
        # The replay changes nothing: the session stays established
        # exactly once and no duplicate establishment is counted.
        assert b.session_with(a.node_id).state.name == "ESTABLISHED"
        assert b.outcome().dndp_count == dndp_before


class TestEventDoS:
    def test_injector_flood_contained(self, small_config):
        net = build_event_network(small_config, seed=11)
        victim = net.nodes[0]
        codes = sorted(victim.revocation.active_codes())
        injector = EventDoSInjector(
            medium=net.medium,
            simulator=net.simulator,
            compromised_codes=codes,
            position=victim.position,
            rng=derive_rng(1, "dos"),
            claimed_sender=net.nodes[1].node_id,
            frame_duration=1e-3,
        )
        # Flood long enough that many fakes land in buffered windows.
        injector.start(interval=2e-3, count=3000)
        net.simulator.run()
        assert injector.injected == 3000
        verifications = net.trace.counter("dos.verifications")
        assert verifications > 0
        # Containment: every holder revokes after gamma + 1, so the
        # total wasted work across all victims is bounded.
        gamma = small_config.revocation_gamma
        total_holders = sum(
            len(net.assignment.holders_of(code)) for code in codes
        )
        assert verifications <= total_holders * (gamma + 1)

    def test_injector_needs_codes(self, small_config):
        net = build_event_network(small_config, seed=11)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EventDoSInjector(
                medium=net.medium,
                simulator=net.simulator,
                compromised_codes=[],
                position=(0, 0),
                rng=derive_rng(1, "dos"),
                claimed_sender=net.nodes[1].node_id,
            )

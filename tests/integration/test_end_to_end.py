"""End-to-end scenarios exercising the whole stack together."""

import numpy as np
import pytest

from repro.adversary.jammer import JammerStrategy
from repro.analysis.dndp_theory import dndp_lower_bound
from repro.core.config import JRSNDConfig
from repro.experiments.runner import NetworkExperiment
from repro.experiments.scenarios import build_event_network


class TestFullProtocolLifecycle:
    def test_dndp_then_mndp_builds_complete_logical_graph(self):
        """Benign deployment: JR-SND discovers every physical pair."""
        config = JRSNDConfig(
            n_nodes=8,
            codes_per_node=3,
            share_count=3,
            n_compromised=0,
            field_width=500.0,
            field_height=500.0,
            tx_range=300.0,
            rho=1e-9,
        )
        net = build_event_network(config, seed=21)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=40.0)
        start = net.simulator.now
        for node in net.nodes:
            node.initiate_mndp(nu=4)
        net.simulator.run(until=start + 200.0)
        physical = set(net.node_pairs_in_range())
        logical = net.logical_pairs()
        assert logical == physical

    def test_partial_compromise_partial_jamming(self):
        """Compromising some nodes degrades but does not destroy
        discovery; session codes stay safe."""
        config = JRSNDConfig(
            n_nodes=8,
            codes_per_node=3,
            share_count=4,
            n_compromised=2,
            field_width=500.0,
            field_height=500.0,
            tx_range=300.0,
            rho=1e-9,
        )
        net = build_event_network(
            config, seed=23, jammer_strategy=JammerStrategy.REACTIVE
        )
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=40.0)
        start = net.simulator.now
        for node in net.nodes:
            node.initiate_mndp(nu=4)
        net.simulator.run(until=start + 200.0)
        logical = net.logical_pairs()
        physical = set(net.node_pairs_in_range())
        assert logical <= physical
        # Pairs sharing a non-compromised code always make it.
        for a, b in physical:
            shared = set(net.assignment.shared_codes(a, b))
            if shared - set(net.compromise.codes):
                assert (a, b) in logical


class TestMonteCarloPipelines:
    def test_paper_scale_snapshot(self):
        """One full 2000-node Table I run completes and is sane."""
        result = NetworkExperiment(
            JRSNDConfig(), seed=99, strategy=JammerStrategy.REACTIVE
        ).run(1)
        run = result.runs[0]
        assert run.n_pairs > 15000  # ~ n g / 2 ~ 22600
        assert 0.5 < run.p_dndp < 0.95
        assert run.p_jrsnd > run.p_dndp
        theory = dndp_lower_bound(JRSNDConfig(), 20)
        assert run.p_dndp == pytest.approx(theory, abs=0.05)

    def test_seed_isolation(self):
        """Different seeds give statistically distinct snapshots."""
        a = NetworkExperiment(JRSNDConfig(n_nodes=500), seed=1).run_once(0)
        b = NetworkExperiment(JRSNDConfig(n_nodes=500), seed=2).run_once(0)
        assert a != b

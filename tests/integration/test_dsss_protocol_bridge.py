"""Chip-level validation of the message-level jamming model.

The network simulations decide message fates with two rules measured
here against actual chips: (1) a message survives concurrent traffic and
jamming under *other* codes; (2) jamming with the *correct* code over
more than the ECC tolerance destroys it.  This bridge test keeps the
fast message-level medium honest.
"""

import numpy as np
import pytest

from repro.dsss.channel import ChipChannel
from repro.dsss.frame import Frame, FrameCodec, MessageType
from repro.dsss.spread_code import CodePool
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.errors import DecodeError
from repro.utils.bitstring import bits_from_int


def _hello_frame(node_value, rng):
    return Frame(
        MessageType.HELLO, bits_from_int(node_value, 16)
    )


class TestHelloOverChips:
    def test_hello_decodes_through_interference(self, rng):
        """Rule 1: other-code traffic does not block a HELLO."""
        pool = CodePool.generate(6, 512, seed=10)
        codec = FrameCodec(mu=1.0)
        frame = _hello_frame(1234, rng)
        coded = codec.encode(frame)

        channel = ChipChannel(noise_std=0.2)
        channel.add_message(coded, pool.code(0), offset=900, label="hello")
        # Two concurrent foreign transmissions plus a wrong-code jammer.
        channel.add_message(
            rng.integers(0, 2, coded.size).astype(np.int8),
            pool.code(3),
            offset=0,
        )
        channel.add_jamming(
            pool.code(4), offset=900, n_bits=coded.size, rng=rng,
            amplitude=1.5,
        )
        buffer = channel.render(rng=rng)

        receiver_codes = [pool.code(0), pool.code(1), pool.code(2)]
        sync = SlidingWindowSynchronizer(
            receiver_codes, tau=0.15, message_bits=int(coded.size)
        )
        # Under heavy interference single locks can be spurious;
        # the validated scan retries until the ECC decode succeeds.
        decoded = sync.scan_validated(
            buffer, lambda res: codec.decode(res.bits, payload_bits=16)
        )
        assert decoded == frame

    def test_correct_code_jamming_destroys(self, rng):
        """Rule 2: >= mu/(1+mu) overlap with the right code kills it."""
        pool = CodePool.generate(3, 512, seed=11)
        codec = FrameCodec(mu=1.0)
        frame = _hello_frame(77, rng)
        coded = codec.encode(frame)

        channel = ChipChannel(noise_std=0.2)
        channel.add_message(coded, pool.code(0), offset=0)
        n_jam = int(coded.size * 0.75)
        channel.add_jamming(
            pool.code(0),
            offset=(coded.size - n_jam) * 512,
            n_bits=n_jam,
            rng=rng,
            amplitude=2.0,
        )
        buffer = channel.render(rng=rng)
        sync = SlidingWindowSynchronizer(
            [pool.code(0)], tau=0.15, message_bits=int(coded.size)
        )
        result = sync.scan(buffer)
        if result is None:
            return  # head destroyed: even stronger failure
        with pytest.raises(DecodeError):
            codec.decode(result.bits, payload_bits=16)

    def test_session_code_isolated_from_pool(self, rng):
        """A session code derived at runtime is orthogonal to pool
        codes: pool-code jamming cannot touch it."""
        from repro.crypto.session import derive_session_code

        pool = CodePool.generate(4, 512, seed=12)
        session = derive_session_code(b"K" * 32, 11, 22, 512)
        codec = FrameCodec(mu=1.0)
        frame = _hello_frame(5, rng)
        coded = codec.encode(frame)

        channel = ChipChannel(noise_std=0.2)
        channel.add_message(coded, session, offset=0)
        for i in range(4):
            channel.add_jamming(
                pool.code(i), offset=0, n_bits=coded.size, rng=rng,
                amplitude=1.5,
            )
        buffer = channel.render(rng=rng)
        sync = SlidingWindowSynchronizer(
            [session], tau=0.15, message_bits=int(coded.size)
        )
        result = sync.scan(buffer)
        assert result is not None
        assert codec.decode(result.bits, payload_bits=16) == frame

    def test_tau_choice_at_512(self, rng):
        """The paper's tau = 0.15 at N = 512 separates signal from
        cross-correlation noise by a wide margin."""
        pool = CodePool.generate(50, 512, seed=13)
        signal = pool.code(0)
        window = signal.chips.astype(float)
        cross = [abs(signal.correlation(pool.code(i).chips)) for i in
                 range(1, 50)]
        assert signal.correlation(window) == pytest.approx(1.0)
        assert max(cross) < 0.15

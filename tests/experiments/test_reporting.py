"""Unit tests for the text table renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.reporting import format_row, format_series_table


class TestFormatRow:
    def test_alignment(self):
        row = format_row(["a", 1.23456], [5, 9])
        assert row == "    a     1.2346"

    def test_large_floats(self):
        assert "1234.5" in format_row([1234.54], [9])


class TestFormatTable:
    def test_basic(self):
        rows = [{"x": 1.0, "y": 0.5}, {"x": 2.0, "y": 0.25}]
        table = format_series_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "x" in lines[1] and "y" in lines[1]
        assert len(lines) == 5

    def test_column_selection(self):
        rows = [{"x": 1.0, "y": 0.5}]
        table = format_series_table(rows, columns=["y"])
        assert "x" not in table.splitlines()[0]

    def test_unknown_column(self):
        with pytest.raises(ConfigurationError):
            format_series_table([{"x": 1.0}], columns=["z"])

    def test_empty_rows(self):
        with pytest.raises(ConfigurationError):
            format_series_table([])

"""Unit tests for the pre-wired event scenarios."""

import pytest

from repro.adversary.jammer import JammerStrategy
from repro.experiments.scenarios import build_event_network


class TestBuildEventNetwork:
    def test_wiring(self, small_config):
        net = build_event_network(small_config, seed=1)
        assert len(net.nodes) == small_config.n_nodes
        assert net.pool.size == small_config.pool_size
        assert net.pool.code_length == small_config.code_length
        # Every node's codes are real pool codes at the assigned slots.
        for index, node in enumerate(net.nodes):
            assigned = net.assignment.node_codes[index]
            assert sorted(node._codes.keys()) == sorted(assigned)

    def test_positions_respected(self, small_config):
        config = small_config.replace(n_nodes=2, share_count=2)
        positions = [(1.0, 2.0), (3.0, 4.0)]
        net = build_event_network(config, seed=1, positions=positions)
        assert net.nodes[0].position == (1.0, 2.0)

    def test_position_count_checked(self, small_config):
        with pytest.raises(ValueError):
            build_event_network(small_config, seed=1, positions=[(0, 0)])

    def test_jammer_attachment(self, small_config):
        config = small_config.replace(n_compromised=2)
        net = build_event_network(
            config, seed=1, jammer_strategy=JammerStrategy.REACTIVE
        )
        assert net.jammer is not None
        assert net.compromise.n_nodes == 2

    def test_no_jammer_by_default(self, small_config):
        assert build_event_network(small_config, seed=1).jammer is None

    def test_deterministic(self, small_config):
        a = build_event_network(small_config, seed=9)
        b = build_event_network(small_config, seed=9)
        assert a.assignment.node_codes == b.assignment.node_codes
        assert [n.position for n in a.nodes] == [n.position for n in b.nodes]


class TestAdmitNode:
    def test_joiner_gets_codes_and_discovers(self, small_config):
        from repro.experiments.scenarios import admit_node

        net = build_event_network(small_config, seed=7)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=30.0)
        established_before = set(net.logical_pairs())

        joiner = admit_node(net, position=net.nodes[0].position)
        assert joiner.index == small_config.n_nodes
        assert len(net.assignment.node_codes[joiner.index]) == (
            small_config.codes_per_node
        )
        # The joiner runs discovery and finds code-sharing neighbors.
        joiner.initiate_dndp()
        net.simulator.run(until=net.simulator.now + 30.0)
        logical = net.logical_pairs()
        assert established_before <= logical
        sharing = [
            other.index
            for other in net.nodes
            if other.index != joiner.index
            and net.assignment.shared_codes(joiner.index, other.index)
            and net.field.in_range(joiner.position, other.position)
        ]
        for other_index in sharing:
            assert (other_index, joiner.index) in logical

    def test_share_counts_stay_bounded(self, small_config):
        from repro.experiments.scenarios import admit_node

        net = build_event_network(small_config, seed=7)
        admit_node(net, position=(10.0, 10.0), seed_label="j1")
        admit_node(net, position=(20.0, 20.0), seed_label="j2")
        # l plus at most one extra batch round.
        assert net.assignment.max_share_count() <= (
            small_config.share_count + 1
        )

"""Unit tests for the figure sweep definitions (fast, tiny versions)."""

import pytest

from repro.core.config import JRSNDConfig
from repro.experiments.figures import (
    figure2_sweep,
    figure3a_sweep,
    figure3b_sweep,
    figure4_sweep,
    figure5_sweep,
)

TINY = JRSNDConfig(
    n_nodes=300,
    codes_per_node=20,
    share_count=15,
    n_compromised=5,
    field_width=2000.0,
    field_height=2000.0,
    tx_range=300.0,
)


class TestFigure2:
    def test_rows_and_columns(self):
        rows = figure2_sweep(m_values=(10, 20), runs=1, base=TINY)
        assert len(rows) == 2
        for row in rows:
            for key in ("m", "p_dndp", "p_mndp", "p_jrsnd",
                        "t_dndp", "t_mndp", "t_jrsnd"):
                assert key in row

    def test_latency_quadratic_in_m(self):
        rows = figure2_sweep(m_values=(20, 40, 80), runs=1, base=TINY)
        t = [row["t_dndp"] for row in rows]
        assert t[2] / t[1] > 3.0

    def test_probability_increases_with_m(self):
        rows = figure2_sweep(m_values=(5, 40), runs=2, base=TINY)
        assert rows[1]["p_dndp"] > rows[0]["p_dndp"]


class TestFigure3:
    def test_3a_shape(self):
        rows = figure3a_sweep(l_values=(5, 20), runs=1, base=TINY)
        assert rows[1]["p_dndp"] > rows[0]["p_dndp"]

    def test_3b_columns(self):
        rows = figure3b_sweep(n_values=(200, 400), runs=1, base=TINY)
        assert [row["n"] for row in rows] == [200, 400]


class TestFigure4:
    def test_decreasing_in_q(self):
        rows = figure4_sweep(
            share_count=15, q_values=(0, 60), runs=2, base=TINY
        )
        assert rows[0]["p_dndp"] > rows[1]["p_dndp"]

    def test_carries_l(self):
        rows = figure4_sweep(
            share_count=15, q_values=(0,), runs=1, base=TINY
        )
        assert rows[0]["l"] == 15


class TestFigure5:
    def test_nu_improves_mndp(self):
        rows = figure5_sweep(
            nu_values=(1, 4), q=40, runs=2, base=TINY
        )
        assert rows[1]["p_mndp"] >= rows[0]["p_mndp"]

    def test_latency_grows_with_nu(self):
        rows = figure5_sweep(nu_values=(1, 4), q=40, runs=1, base=TINY)
        assert rows[1]["t_mndp"] > rows[0]["t_mndp"]

    def test_combined_check_consistent(self):
        """P = P_D + (1-P_D) P_M holds per run; across-run averaging
        of the conditional P_M introduces only a small discrepancy."""
        rows = figure5_sweep(nu_values=(2,), q=40, runs=2, base=TINY)
        row = rows[0]
        assert row["p_jrsnd"] == pytest.approx(
            row["p_combined_check"], abs=0.02
        )

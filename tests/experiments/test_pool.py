"""Tests for the persistent warm worker pool.

The load-bearing property is the equivalence gate: serial, fresh-pool,
and persistent-pool execution must produce bit-identical outcomes and
per-run metrics, for one call and across many reusing calls.
"""

import os

import pytest

import repro.experiments.parallel as parallel_module
from repro.core.config import JRSNDConfig
from repro.errors import (
    ConfigurationError,
    ParallelExecutionError,
    WorkerPoolError,
)
from repro.experiments.parallel import run_parallel
from repro.experiments.pool import (
    ExperimentSpec,
    SupervisionPolicy,
    WorkerPool,
    adaptive_chunksize,
    available_cpu_count,
)
from repro.experiments.runner import NetworkExperiment
from repro.obs import installed
from repro.obs import names as _names
from repro.obs.registry import MetricsRegistry

TINY = JRSNDConfig(
    n_nodes=120,
    codes_per_node=12,
    share_count=10,
    n_compromised=5,
    field_width=1200.0,
    field_height=1200.0,
    tx_range=260.0,
)
TINY_B = TINY.replace(n_compromised=10)


@pytest.fixture
def pool():
    with WorkerPool(processes=2) as warm_pool:
        yield warm_pool


class TestAvailableCpuCount:
    def test_positive(self):
        assert available_cpu_count() >= 1

    def test_uses_affinity_mask_when_available(self, monkeypatch):
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 2, 5},
            raising=False,
        )
        assert available_cpu_count() == 3

    def test_falls_back_without_affinity(self, monkeypatch):
        """Platforms without ``sched_getaffinity`` (macOS, Windows)
        fall back to the machine count."""
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        import multiprocessing

        assert available_cpu_count() == multiprocessing.cpu_count()

    def test_falls_back_on_oserror(self, monkeypatch):
        def broken(pid):
            raise OSError("no affinity for you")

        monkeypatch.setattr(
            os, "sched_getaffinity", broken, raising=False
        )
        import multiprocessing

        assert available_cpu_count() == multiprocessing.cpu_count()


class TestAdaptiveChunksize:
    def test_targets_four_chunks_per_worker(self):
        assert adaptive_chunksize(100, 2) == 13
        assert adaptive_chunksize(8, 2) == 1
        assert adaptive_chunksize(64, 4) == 4

    def test_bounds(self):
        assert adaptive_chunksize(0, 2) == 1
        assert adaptive_chunksize(10_000, 2) == 32

    def test_explicit_override(self):
        assert adaptive_chunksize(100, 2, chunksize=5) == 5
        with pytest.raises(ConfigurationError):
            adaptive_chunksize(100, 2, chunksize=0)


class TestExperimentSpec:
    def test_content_key_is_stable(self):
        a = ExperimentSpec(config=TINY, seed=7)
        b = ExperimentSpec(config=TINY, seed=7)
        assert a.content_key() == b.content_key()

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 8},
            {"config": TINY_B},
            {"mndp_rounds": 2},
            {"link_model": "independent"},
            {"collect_metrics": True},
            {"phy_backend": "chipless"},
        ],
    )
    def test_content_key_covers_every_axis(self, override):
        base = ExperimentSpec(config=TINY, seed=7)
        kwargs = {"config": TINY, "seed": 7}
        kwargs.update(override)
        changed = ExperimentSpec(**kwargs)
        assert base.content_key() != changed.content_key()

    def test_build_matches_direct_construction(self):
        spec = ExperimentSpec(config=TINY, seed=7)
        built = spec.build().run(2)
        direct = NetworkExperiment(TINY, seed=7).run(2)
        assert built.runs == direct.runs


class TestEquivalence:
    def test_serial_fresh_and_persistent_are_identical(self, pool):
        """The headline gate: all three engines, same bits."""
        serial = run_parallel(
            TINY, seed=11, runs=4, processes=1, collect_metrics=True
        )
        fresh = run_parallel(
            TINY, seed=11, runs=4, processes=2, collect_metrics=True
        )
        warm = run_parallel(
            TINY, seed=11, runs=4, collect_metrics=True, pool=pool
        )
        assert serial.runs == fresh.runs == warm.runs
        assert (
            serial.merged_metrics().counters
            == fresh.merged_metrics().counters
            == warm.merged_metrics().counters
        )

    def test_reuse_across_points_and_revisits(self, pool):
        """A pool cycling through several points — and revisiting the
        first — keeps producing exactly the serial results."""
        plan = [(TINY, 3), (TINY_B, 5), (TINY, 3)]
        for config, seed in plan:
            serial = NetworkExperiment(
                config, seed=seed, collect_metrics=True
            ).run(3)
            warm = run_parallel(
                config, seed=seed, runs=3,
                collect_metrics=True, pool=pool,
            )
            assert warm.runs == serial.runs
            assert (
                warm.merged_metrics().counters
                == serial.merged_metrics().counters
            )

    def test_run_indices_subset(self, pool):
        full = run_parallel(TINY, seed=11, runs=6, processes=1)
        part = run_parallel(
            TINY, seed=11, runs=3, run_indices=[2, 3, 4], pool=pool
        )
        assert part.runs == full.runs[2:5]

    def test_lru_eviction_keeps_results_correct(self):
        """cache_size=1 forces rebuild-on-revisit; only speed may
        change, never bits."""
        with WorkerPool(processes=2, cache_size=1) as small_pool:
            for config in (TINY, TINY_B, TINY):
                serial = NetworkExperiment(config, seed=5).run(2)
                warm = run_parallel(
                    config, seed=5, runs=2, pool=small_pool
                )
                assert warm.runs == serial.runs


class TestPoolMetrics:
    def test_counters_observe_reuse(self):
        registry = MetricsRegistry()
        with installed(registry):
            with WorkerPool(processes=2) as pool:
                run_parallel(TINY, seed=11, runs=4, pool=pool)
                run_parallel(TINY, seed=11, runs=4, pool=pool)
                run_parallel(TINY_B, seed=11, runs=4, pool=pool)
            counters = registry.snapshot().counters
        assert counters[_names.POOL_WORKERS_SPAWNED] == 2
        assert counters[_names.POOL_WARM_MISSES] == 2
        assert counters[_names.POOL_WARM_HITS] == 1
        # One configure broadcast per miss reaches every worker.
        assert counters[_names.POOL_RECONFIGURES] == 4
        assert counters[_names.POOL_TASKS_DISPATCHED] >= 3

    def test_pool_counters_never_enter_run_snapshots(self):
        """pool.* is parent-side observability; per-run metrics (the
        bytes that land in campaign stores) must not contain it."""
        registry = MetricsRegistry()
        with installed(registry):
            with WorkerPool(processes=2) as pool:
                result = run_parallel(
                    TINY, seed=11, runs=2,
                    collect_metrics=True, pool=pool,
                )
        for run in result.runs:
            assert not any(
                name.startswith("pool.")
                for name in run.metrics.counters
            )


class TestFailureSemantics:
    @staticmethod
    def _failing_run_once(self, run_index):
        if run_index == 1:
            raise RuntimeError(f"synthetic failure in run {run_index}")
        return self._execute_run(run_index)

    def test_run_failures_do_not_break_the_pool(self, monkeypatch):
        """Per-run failures come back as tagged data (exactly like the
        fresh-pool path) and the pool stays usable."""
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("requires fork start method")
        monkeypatch.setattr(
            NetworkExperiment, "run_once", self._failing_run_once
        )
        with WorkerPool(processes=2) as pool:
            with pytest.raises(ParallelExecutionError) as excinfo:
                run_parallel(TINY, seed=11, runs=3, pool=pool)
            err = excinfo.value
            assert [index for index, _ in err.failures] == [1]
            assert len(err.completed.runs) == 2
            assert not pool.broken
            # The forked workers keep the patched run_once, so reuse
            # the pool on an index that does not trip it: the pool
            # still accepts and executes work after run failures.
            again = run_parallel(
                TINY, seed=11, runs=1, run_indices=[0], pool=pool
            )
            assert len(again.runs) == 1

    def test_submit_after_close_is_refused(self):
        pool = WorkerPool(processes=2)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigurationError):
            pool.submit(ExperimentSpec(config=TINY, seed=7), [0])

    def test_empty_indices_refused(self, pool):
        with pytest.raises(ConfigurationError):
            pool.submit(ExperimentSpec(config=TINY, seed=7), [])

    def test_dead_workers_are_respawned(self, pool):
        """Supervision absorbs worker deaths between jobs: every
        worker is respawned and the job still produces serial bits."""
        for process in pool._processes:
            process.terminate()
            process.join(timeout=10.0)
        serial = NetworkExperiment(TINY, seed=7).run(2)
        outcomes = pool.run(ExperimentSpec(config=TINY, seed=7), [0, 1])
        outcomes.sort(key=lambda outcome: outcome[0])
        assert [result for _, result, _ in outcomes] == list(serial.runs)
        assert not pool.broken

    def test_exhausted_respawn_budget_breaks_the_pool(self):
        """Infrastructure failure (more deaths than the respawn budget
        allows) surfaces as WorkerPoolError and poisons later
        submissions."""
        policy = SupervisionPolicy(
            max_respawns=0, backoff_base=0.0, close_grace=5.0
        )
        with WorkerPool(processes=2, policy=policy) as pool:
            for process in pool._processes:
                process.terminate()
                process.join(timeout=10.0)
            with pytest.raises(WorkerPoolError):
                pool.run(ExperimentSpec(config=TINY, seed=7), [0, 1])
            with pytest.raises(WorkerPoolError):
                pool.submit(ExperimentSpec(config=TINY, seed=7), [0])
            assert pool.broken


class TestInlinePathLeak:
    def test_single_worker_path_clears_module_global(self):
        """Regression: the workers<=1 path used to leave the built
        experiment in ``_worker_experiment`` after returning."""
        run_parallel(TINY, seed=6, runs=2, processes=1)
        assert parallel_module._worker_experiment is None

    def test_cleared_even_when_runs_fail(self, monkeypatch):
        def failing(self, run_index):
            raise RuntimeError("boom")

        monkeypatch.setattr(NetworkExperiment, "run_once", failing)
        with pytest.raises(ParallelExecutionError):
            run_parallel(TINY, seed=6, runs=2, processes=1)
        assert parallel_module._worker_experiment is None

"""Tests for the analysis-vs-simulation validation grid."""

import pytest

from repro.core.config import JRSNDConfig
from repro.errors import ConfigurationError
from repro.experiments.validation import (
    ValidationPoint,
    validate_theorem1_grid,
    worst_deviation,
)

SMALL = JRSNDConfig(
    n_nodes=400,
    codes_per_node=20,
    share_count=15,
    field_width=2000.0,
    field_height=2000.0,
    tx_range=300.0,
)


class TestGrid:
    def test_grid_agrees_with_theory(self):
        points = validate_theorem1_grid(
            q_values=(0, 20), l_values=(10, 15), runs=2, base=SMALL
        )
        assert len(points) == 8  # 2 q x 2 l x 2 strategies
        gap, worst = worst_deviation(points)
        assert gap < 0.06, f"worst point: {worst}"

    def test_zero_compromise_exact(self):
        points = validate_theorem1_grid(
            q_values=(0,), l_values=(10,), runs=2, base=SMALL
        )
        for point in points:
            # With q = 0 both strategies reduce to the sharing
            # probability; agreement is tight.
            assert point.deviation < 0.03

    def test_point_fields(self):
        point = ValidationPoint(
            q=20, share_count=40, strategy="reactive",
            simulated=0.72, predicted=0.73,
        )
        assert point.deviation == pytest.approx(0.01)

    def test_worst_of_empty(self):
        assert worst_deviation([]) == (0.0, None)

    def test_rejects_zero_runs(self):
        with pytest.raises(ConfigurationError):
            validate_theorem1_grid(runs=0, base=SMALL)

"""End-to-end equivalence of the experiment compute backends.

The ``compute_backend`` knob swaps the snapshot pipeline between the
original per-item loops and the packed/NumPy implementations; both must
consume identical rng streams and produce identical results, run
results, and instrumented counters.
"""

import pytest

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.errors import ConfigurationError
from repro.experiments.parallel import run_parallel
from repro.experiments.runner import NetworkExperiment


def _small_config() -> JRSNDConfig:
    return JRSNDConfig(
        n_nodes=250,
        codes_per_node=20,
        share_count=10,
        n_compromised=8,
        field_width=1500.0,
        field_height=1500.0,
        tx_range=300.0,
    )


class TestComputeBackendEquivalence:
    @pytest.mark.parametrize(
        "strategy", [JammerStrategy.REACTIVE, JammerStrategy.RANDOM]
    )
    def test_run_results_identical(self, strategy):
        config = _small_config()
        reference = NetworkExperiment(
            config, seed=31, strategy=strategy,
            compute_backend="reference", collect_metrics=True,
        ).run(3)
        vectorized = NetworkExperiment(
            config, seed=31, strategy=strategy,
            compute_backend="vectorized", collect_metrics=True,
        ).run(3)
        assert reference == vectorized

    def test_instrumented_counters_identical(self):
        config = _small_config()
        kwargs = dict(seed=5, mndp_rounds=2, collect_metrics=True)
        reference = NetworkExperiment(
            config, compute_backend="reference", **kwargs
        ).run(2)
        vectorized = NetworkExperiment(
            config, compute_backend="vectorized", **kwargs
        ).run(2)
        want = reference.merged_metrics()
        got = vectorized.merged_metrics()
        assert want.counters == got.counters
        assert want.histograms.keys() == got.histograms.keys()
        for name in want.histograms:
            assert want.histograms[name] == got.histograms[name], name

    def test_parallel_matches_serial_per_backend(self):
        config = _small_config()
        for backend in ("reference", "vectorized"):
            serial = NetworkExperiment(
                config, seed=13, compute_backend=backend,
                collect_metrics=True,
            ).run(4)
            parallel = run_parallel(
                config, seed=13, runs=4, processes=2,
                compute_backend=backend, collect_metrics=True,
            )
            assert serial == parallel
            assert (
                serial.merged_metrics().counters
                == parallel.merged_metrics().counters
            )

    def test_backend_property_and_validation(self):
        config = _small_config()
        assert (
            NetworkExperiment(config, seed=1).compute_backend
            == "vectorized"
        )
        with pytest.raises(ConfigurationError):
            NetworkExperiment(config, seed=1, compute_backend="cuda")

"""Supervision tests: respawn, retry, quarantine, timeouts, shutdown.

Driven end to end through the seeded execution-plane injectors
(:mod:`repro.faults.execution`), the way ``BurstJammer`` drives the
channel tests: every scenario is deterministic, and the load-bearing
assertion everywhere is that supervision never changes result bits —
a retried run is identical to an undisturbed one because runs are
seed-pure.
"""

import time

import pytest

from repro.core.config import JRSNDConfig
from repro.errors import (
    ConfigurationError,
    ParallelExecutionError,
    WorkerPoolError,
    is_quarantined_failure,
)
from repro.experiments.parallel import run_parallel
from repro.experiments.pool import (
    ExperimentSpec,
    SupervisionPolicy,
    WorkerPool,
)
from repro.experiments.runner import NetworkExperiment
from repro.faults import (
    ExecutionFaultPlan,
    RunHang,
    SlowWorker,
    WorkerKiller,
)
from repro.obs import installed
from repro.obs import names as _names
from repro.obs.registry import MetricsRegistry

TINY = JRSNDConfig(
    n_nodes=120,
    codes_per_node=12,
    share_count=10,
    n_compromised=5,
    field_width=1200.0,
    field_height=1200.0,
    tx_range=260.0,
)

FAST = SupervisionPolicy(
    backoff_base=0.01, backoff_max=0.05, close_grace=5.0
)


def plan(*injectors):
    return ExecutionFaultPlan(tuple(injectors))


class TestSupervisionPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = SupervisionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5
        )
        assert policy.retry_delay(0) == 0.0
        assert policy.retry_delay(1) == pytest.approx(0.1)
        assert policy.retry_delay(2) == pytest.approx(0.2)
        assert policy.retry_delay(3) == pytest.approx(0.4)
        assert policy.retry_delay(4) == pytest.approx(0.5)  # capped
        assert policy.retry_delay(10) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_run_retries": -1},
            {"max_respawns": -1},
            {"backoff_factor": 0.5},
            {"run_timeout": 0.0},
            {"close_grace": 0.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(**bad)


class TestRespawnRetry:
    def test_killed_worker_respawns_and_retried_run_is_bit_identical(
        self,
    ):
        """The headline supervision gate: a run that SIGKILLs its
        worker once is retried on a respawned worker and the final
        result is byte-for-byte the serial result."""
        serial = run_parallel(
            TINY, seed=11, runs=4, processes=1, collect_metrics=True
        )
        registry = MetricsRegistry()
        with installed(registry):
            with WorkerPool(
                processes=2,
                policy=FAST,
                execution_faults=plan(WorkerKiller(kills={1: 1})),
            ) as pool:
                survived = run_parallel(
                    TINY, seed=11, runs=4,
                    collect_metrics=True, pool=pool,
                )
            counters = registry.snapshot().counters
        assert survived.runs == serial.runs
        assert (
            survived.merged_metrics().counters
            == serial.merged_metrics().counters
        )
        assert counters[_names.POOL_WORKERS_RESPAWNED] >= 1
        assert counters[_names.POOL_RUNS_RETRIED] >= 1
        assert _names.POOL_RUNS_QUARANTINED not in counters

    def test_repeat_kills_force_repeat_respawns(self):
        """A run that kills its worker twice consumes two respawns
        and still lands bit-identically on its third attempt."""
        serial = NetworkExperiment(TINY, seed=3).run(4)
        registry = MetricsRegistry()
        with installed(registry):
            with WorkerPool(
                processes=2,
                policy=FAST,
                execution_faults=plan(WorkerKiller(kills={2: 2})),
            ) as pool:
                result = run_parallel(TINY, seed=3, runs=4, pool=pool)
            counters = registry.snapshot().counters
        assert result.runs == serial.runs
        assert counters[_names.POOL_WORKERS_RESPAWNED] >= 2

    def test_fresh_pool_path_survives_worker_kills(self):
        """The pool-less (``--no-pool``) path rides the same
        supervisor: an individual worker SIGKILLed mid-map respawns
        instead of wedging the whole call."""
        serial = run_parallel(TINY, seed=11, runs=4, processes=1)
        survived = run_parallel(
            TINY, seed=11, runs=4, processes=2,
            supervision=FAST,
            execution_faults=plan(WorkerKiller(kills={0: 1})),
        )
        assert survived.runs == serial.runs

    def test_inert_fault_plan_is_no_plan(self):
        serial = run_parallel(TINY, seed=5, runs=2, processes=1)
        result = run_parallel(
            TINY, seed=5, runs=2, processes=2,
            execution_faults=ExecutionFaultPlan(),
        )
        assert result.runs == serial.runs


class TestQuarantine:
    def test_poison_run_is_quarantined_not_pool_sinking(self):
        """A run that kills its worker on every attempt is benched as
        a tagged failure; the other runs complete and the pool stays
        usable."""
        registry = MetricsRegistry()
        with installed(registry):
            with WorkerPool(
                processes=2,
                policy=SupervisionPolicy(
                    max_run_retries=1,
                    backoff_base=0.01,
                    close_grace=5.0,
                ),
                execution_faults=plan(WorkerKiller(kills={2: 99})),
            ) as pool:
                with pytest.raises(ParallelExecutionError) as excinfo:
                    run_parallel(TINY, seed=11, runs=4, pool=pool)
                error = excinfo.value
                assert [index for index, _ in error.failures] == [2]
                assert all(
                    is_quarantined_failure(tb)
                    for _, tb in error.failures
                )
                assert len(error.completed.runs) == 3
                assert not pool.broken
                # The pool still accepts and executes work.
                again = run_parallel(
                    TINY, seed=11, runs=1, run_indices=[0], pool=pool
                )
                assert len(again.runs) == 1
            counters = registry.snapshot().counters
        assert counters[_names.POOL_RUNS_QUARANTINED] == 1

    def test_innocent_chunk_mates_are_not_quarantined(self):
        """Runs sharing a chunk with a poison run are retried as
        singletons, so only the killer itself is quarantined."""
        serial = run_parallel(TINY, seed=9, runs=4, processes=1)
        with WorkerPool(
            processes=1,  # one worker => all runs share its chunks
            policy=SupervisionPolicy(
                max_run_retries=1, backoff_base=0.01, close_grace=5.0
            ),
            execution_faults=plan(WorkerKiller(kills={3: 99})),
        ) as pool:
            with pytest.raises(ParallelExecutionError) as excinfo:
                run_parallel(
                    TINY, seed=9, runs=4, pool=pool, chunksize=4
                )
        error = excinfo.value
        assert [index for index, _ in error.failures] == [3]
        # collect_outcomes orders by run index before aggregation.
        assert error.completed.runs == serial.runs[:3]


class TestSoftTimeout:
    def test_hung_worker_is_killed_and_run_retried(self):
        """A wedged worker trips the per-run soft timeout, is killed
        and respawned, and its runs land bit-identically."""
        serial = NetworkExperiment(TINY, seed=7).run(3)
        registry = MetricsRegistry()
        with installed(registry):
            with WorkerPool(
                processes=2,
                policy=SupervisionPolicy(
                    run_timeout=1.0,
                    backoff_base=0.01,
                    close_grace=2.0,
                ),
                execution_faults=plan(
                    RunHang(hangs={1: 1}, duration=60.0)
                ),
            ) as pool:
                result = run_parallel(TINY, seed=7, runs=3, pool=pool)
            counters = registry.snapshot().counters
        assert result.runs == serial.runs
        assert counters[_names.POOL_WORKERS_TIMED_OUT] >= 1
        assert counters[_names.POOL_WORKERS_RESPAWNED] >= 1


class TestCloseEscalation:
    def test_close_force_kills_uninterruptible_worker(self):
        """Satellite regression: ``close()`` used to leak a worker
        that ignored the stop sentinel.  The join → terminate → kill
        ladder must reap even a SIGTERM-ignoring hang, boundedly."""
        registry = MetricsRegistry()
        with installed(registry):
            pool = WorkerPool(
                processes=2,
                policy=SupervisionPolicy(close_grace=0.3),
                execution_faults=plan(
                    RunHang(
                        hangs={0: 1},
                        duration=120.0,
                        ignore_sigterm=True,
                    )
                ),
            )
            handle = pool.submit(
                ExperimentSpec(config=TINY, seed=7), [0, 1]
            )
            # Let the hung chunk reach the worker before closing.
            time.sleep(0.5)
            start = time.monotonic()
            pool.close()
            elapsed = time.monotonic() - start
            counters = registry.snapshot().counters
        assert elapsed < 30.0
        for process in pool._processes:
            assert not process.is_alive()
        assert counters[_names.POOL_WORKERS_FORCE_KILLED] >= 1
        with pytest.raises(WorkerPoolError):
            handle.wait(timeout=5.0)


class TestWaitTimeoutCancellation:
    def test_timed_out_wait_cancels_queued_job(self):
        """Satellite regression: a timed-out ``wait`` used to leave
        the job registered with the dispatcher (slot leak + late
        delivery race).  Now it cancels: the dispatcher skips the job
        and the pool is immediately reusable."""
        serial = NetworkExperiment(TINY, seed=7).run(1)
        with WorkerPool(
            processes=1,
            policy=FAST,
            execution_faults=plan(
                RunHang(hangs={5: 1}, duration=1.5)
            ),
        ) as pool:
            spec = ExperimentSpec(config=TINY, seed=7)
            slow = pool.submit(spec, [5])
            queued = pool.submit(spec, [0])
            with pytest.raises(WorkerPoolError, match="cancelled"):
                queued.wait(timeout=0.2)
            assert queued.cancelled
            # The hung job finishes; the cancelled one is skipped with
            # an error instead of occupying the worker.
            slow.wait(timeout=30.0)
            with pytest.raises(WorkerPoolError, match="cancelled"):
                queued.wait(timeout=30.0)
            # No late delivery into the caller's next job: fresh
            # submissions resolve normally with the right bits.
            outcomes = pool.run(spec, [0])
            assert outcomes[0][1] == serial.runs[0]
            assert not pool.broken


class TestSlowWorker:
    def test_slow_worker_changes_timing_not_bits(self):
        serial = run_parallel(TINY, seed=4, runs=2, processes=1)
        result = run_parallel(
            TINY, seed=4, runs=2, processes=2,
            execution_faults=plan(SlowWorker(delay=0.01)),
        )
        assert result.runs == serial.runs

"""Unit tests for the Monte Carlo field experiment."""

import numpy as np
import pytest

from repro.adversary.compromise import CompromiseModel
from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.analysis.dndp_theory import (
    dndp_lower_bound,
    dndp_upper_bound,
)
from repro.core.config import JRSNDConfig
from repro.core.dndp import DNDPSampler
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult, NetworkExperiment, RunResult
from repro.predistribution.authority import PreDistributor
from repro.utils.rng import derive_rng


SMALL = JRSNDConfig(
    n_nodes=400,
    codes_per_node=20,
    share_count=15,
    n_compromised=10,
    field_width=2000.0,
    field_height=2000.0,
    tx_range=300.0,
)


class TestRunResult:
    def test_probabilities(self):
        run = RunResult(
            n_pairs=100, dndp_successes=60, mndp_successes=20,
            mean_degree=10.0,
        )
        assert run.p_dndp == pytest.approx(0.6)
        assert run.p_mndp == pytest.approx(0.5)  # 20 of 40 failures
        assert run.p_jrsnd == pytest.approx(0.8)

    def test_empty_run(self):
        run = RunResult(0, 0, 0, 0.0)
        assert run.p_dndp == 0.0
        assert run.p_mndp == 0.0
        assert run.p_jrsnd == 0.0


class TestExperimentResult:
    def test_aggregation(self):
        runs = (
            RunResult(100, 50, 10, 10.0),
            RunResult(100, 70, 10, 12.0),
        )
        result = ExperimentResult(runs)
        assert result.discovery_probability("dndp") == pytest.approx(0.6)
        assert result.mean_degree() == pytest.approx(11.0)
        # Sample std (ddof=1) of [0.5, 0.7]: sqrt(2 * 0.1^2 / 1).
        assert result.std("dndp") == pytest.approx(0.1 * np.sqrt(2.0))

    def test_unknown_kind(self):
        result = ExperimentResult((RunResult(1, 1, 0, 1.0),))
        with pytest.raises(ConfigurationError):
            result.discovery_probability("nope")


class TestStdUsesSampleVariance:
    """Regression: ``std`` used ``np.std`` with the default ``ddof=0``
    (population sigma) while ``confidence_interval`` divided by n-1 —
    the quoted spread and the error bars disagreed, with the std biased
    low by sqrt((n-1)/n) at the paper's run counts."""

    def test_hand_computed_ddof1(self):
        runs = tuple(
            RunResult(100, s, 0, 10.0) for s in (40, 50, 60, 70)
        )
        result = ExperimentResult(runs)
        values = [0.4, 0.5, 0.6, 0.7]
        mean = sum(values) / 4
        sample_var = sum((v - mean) ** 2 for v in values) / 3
        assert result.std("dndp") == pytest.approx(
            float(np.sqrt(sample_var))
        )
        # And it now matches the t-interval's variance estimate:
        # half-width = t * sqrt(var / n).
        from scipy import stats as scipy_stats

        _, low, high = result.confidence_interval("dndp")
        half = scipy_stats.t.ppf(0.975, 3) * np.sqrt(sample_var / 4)
        assert (high - low) / 2 == pytest.approx(half)

    def test_single_run_yields_zero(self):
        result = ExperimentResult((RunResult(100, 50, 0, 10.0),))
        assert result.std("dndp") == 0.0

    def test_no_qualifying_runs_yields_zero(self):
        # All runs failure-free: the mndp series is empty.
        result = ExperimentResult((RunResult(10, 10, 0, 5.0),))
        assert result.std("mndp") == 0.0


class TestEmptyAndWeightedAggregation:
    """Regression: ``mean_degree``/``mean_dndp_latency`` called
    ``np.mean`` on empty sequences (RuntimeWarning + nan, which a
    results store would then persist), and the latency mean ignored
    how many handshakes each run's mean represented."""

    def test_empty_runs_mean_degree_is_zero_and_warning_free(self):
        import warnings

        result = ExperimentResult(runs=())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.mean_degree() == 0.0
            assert result.mean_dndp_latency() is None

    def test_no_latency_samples_is_none(self):
        result = ExperimentResult(
            (RunResult(100, 50, 10, 10.0), RunResult(100, 60, 5, 9.0))
        )
        assert result.mean_dndp_latency() is None

    def test_latency_weighted_by_success_count(self):
        runs = (
            RunResult(100, 90, 0, 10.0, mean_dndp_latency=2.0),
            RunResult(100, 10, 0, 10.0, mean_dndp_latency=4.0),
        )
        result = ExperimentResult(runs)
        # 90 successes at 2.0 s, 10 at 4.0 s -> 2.2 s, not the
        # unweighted 3.0 s.
        assert result.mean_dndp_latency() == pytest.approx(2.2)

    def test_zero_success_latency_run_excluded(self):
        runs = (
            RunResult(100, 0, 0, 10.0, mean_dndp_latency=9.9),
            RunResult(100, 50, 0, 10.0, mean_dndp_latency=1.0),
        )
        result = ExperimentResult(runs)
        assert result.mean_dndp_latency() == pytest.approx(1.0)


class TestNetworkExperiment:
    def test_reproducible(self):
        a = NetworkExperiment(SMALL, seed=3).run_once(0)
        b = NetworkExperiment(SMALL, seed=3).run_once(0)
        assert a == b

    def test_different_runs_differ(self):
        exp = NetworkExperiment(SMALL, seed=3)
        assert exp.run_once(0) != exp.run_once(1)

    def test_reactive_within_theorem1_bounds(self):
        result = NetworkExperiment(
            SMALL, seed=5, strategy=JammerStrategy.REACTIVE
        ).run(4)
        p = result.discovery_probability("dndp")
        low = dndp_lower_bound(SMALL, SMALL.n_compromised)
        high = dndp_upper_bound(SMALL, SMALL.n_compromised)
        assert low - 0.05 <= p <= high + 0.05
        assert p == pytest.approx(low, abs=0.05)

    def test_random_close_to_upper_bound(self):
        result = NetworkExperiment(
            SMALL, seed=5, strategy=JammerStrategy.RANDOM
        ).run(4)
        p = result.discovery_probability("dndp")
        assert p == pytest.approx(
            dndp_upper_bound(SMALL, SMALL.n_compromised), abs=0.05
        )

    def test_random_at_least_reactive(self):
        reactive = NetworkExperiment(
            SMALL, seed=5, strategy=JammerStrategy.REACTIVE
        ).run(3)
        random_ = NetworkExperiment(
            SMALL, seed=5, strategy=JammerStrategy.RANDOM
        ).run(3)
        assert (
            random_.discovery_probability("dndp")
            >= reactive.discovery_probability("dndp") - 0.02
        )

    def test_jrsnd_combines(self):
        result = NetworkExperiment(SMALL, seed=5).run(2)
        p_d = result.discovery_probability("dndp")
        p_j = result.discovery_probability("jrsnd")
        assert p_j >= p_d

    def test_latency_sampling(self):
        result = NetworkExperiment(
            SMALL, seed=5, sample_latency=True
        ).run(1)
        assert result.mean_dndp_latency() is not None
        assert result.mean_dndp_latency() > 0

    def test_mndp_rounds_monotone(self):
        one = NetworkExperiment(SMALL, seed=5, mndp_rounds=1).run(2)
        three = NetworkExperiment(SMALL, seed=5, mndp_rounds=3).run(2)
        assert (
            three.discovery_probability("jrsnd")
            >= one.discovery_probability("jrsnd") - 1e-9
        )


class TestVectorizedSamplerEquivalence:
    def test_matches_reference_sampler(self, rng):
        """The vectorized D-NDP path and DNDPSampler agree statistically."""
        config = SMALL.replace(n_compromised=40)
        distributor = PreDistributor(
            config.n_nodes, config.codes_per_node, config.share_count
        )
        assignment = distributor.assign(rng)
        compromise = CompromiseModel(assignment).compromise_random(40, rng)

        for strategy in (JammerStrategy.REACTIVE, JammerStrategy.RANDOM):
            jamming = JammingModel.from_compromise(
                strategy, compromise, config.z_jamming_signals, config.mu
            )
            pairs = [
                (a, b)
                for a in range(0, 400, 2)
                for b in range(a + 1, min(a + 40, 400), 3)
            ]
            exp = NetworkExperiment(config, seed=0, strategy=strategy)
            vector = exp._sample_dndp(
                pairs, assignment, jamming, derive_rng(1, "v")
            )
            sampler = DNDPSampler(config, jamming)
            reference = np.array(
                [
                    sampler.sample_pair(
                        assignment.shared_codes(a, b), derive_rng(a * 1000 + b, "r")
                    ).success
                    for a, b in pairs
                ]
            )
            assert abs(vector.mean() - reference.mean()) < 0.04, strategy


class TestIndependentLinkModel:
    def test_dndp_matches_closed_form_exactly(self):
        """With i.i.d. links the measured P_D is the Theorem 1 value by
        construction (up to sampling error)."""
        exp = NetworkExperiment(SMALL, seed=4, link_model="independent")
        result = exp.run(4)
        expected = dndp_lower_bound(SMALL, SMALL.n_compromised)
        assert result.discovery_probability("dndp") == pytest.approx(
            expected, abs=0.02
        )

    def test_random_strategy_uses_upper_bound(self):
        exp = NetworkExperiment(
            SMALL, seed=4, strategy=JammerStrategy.RANDOM,
            link_model="independent",
        )
        result = exp.run(4)
        assert result.discovery_probability("dndp") == pytest.approx(
            dndp_upper_bound(SMALL, SMALL.n_compromised), abs=0.02
        )

    def test_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError):
            NetworkExperiment(SMALL, seed=1, link_model="magic")

    def test_independent_less_mndp_recovery_at_heavy_compromise(self):
        """The headline divergence: relay correlations in the faithful
        model outperform i.i.d. links at small nu under heavy
        compromise (see EXPERIMENTS.md)."""
        heavy = SMALL.replace(n_compromised=60, nu=2)
        faithful = NetworkExperiment(
            heavy, seed=4, link_model="codes"
        ).run(3)
        independent = NetworkExperiment(
            heavy, seed=4, link_model="independent"
        ).run(3)
        assert faithful.discovery_probability("mndp") > (
            independent.discovery_probability("mndp") - 0.03
        )


class TestMndpAggregationExcludesZeroFailureRuns:
    """Regression: runs where D-NDP succeeded on every pair carry no
    information about M-NDP recovery; averaging their p_mndp == 0.0
    into the mean biased the recovery rate down."""

    def test_zero_failure_runs_excluded_from_mean(self):
        runs = (
            RunResult(100, 100, 0, 10.0),   # no failures: p_mndp undefined
            RunResult(100, 50, 25, 10.0),   # 25 of 50 failures recovered
        )
        result = ExperimentResult(runs)
        assert result.discovery_probability("mndp") == pytest.approx(0.5)

    def test_std_and_ci_also_exclude(self):
        runs = (
            RunResult(100, 100, 0, 10.0),
            RunResult(100, 50, 20, 10.0),
            RunResult(100, 60, 20, 10.0),
        )
        result = ExperimentResult(runs)
        # Only the two informative runs enter: 0.4 and 0.5; sample std
        # (ddof=1) of those two values is 0.05 * sqrt(2).
        assert result.discovery_probability("mndp") == pytest.approx(0.45)
        assert result.std("mndp") == pytest.approx(0.05 * np.sqrt(2.0))

    def test_all_runs_zero_failures(self):
        runs = (RunResult(10, 10, 0, 5.0), RunResult(10, 10, 0, 5.0))
        result = ExperimentResult(runs)
        assert result.discovery_probability("mndp") == 0.0

    def test_dndp_and_jrsnd_unaffected(self):
        runs = (
            RunResult(100, 100, 0, 10.0),
            RunResult(100, 50, 25, 10.0),
        )
        result = ExperimentResult(runs)
        assert result.discovery_probability("dndp") == pytest.approx(0.75)
        assert result.discovery_probability("jrsnd") == pytest.approx(0.875)


class TestCollectMetrics:
    def test_snapshot_attached_per_run(self):
        exp = NetworkExperiment(SMALL, seed=7, collect_metrics=True)
        result = exp.run(2)
        for run in result.runs:
            assert run.metrics is not None
            assert run.metrics.counter("experiment.runs") == 1
            assert run.metrics.counter("experiment.pairs") == run.n_pairs
            assert (
                run.metrics.counter("experiment.dndp_successes")
                == run.dndp_successes
            )

    def test_merged_metrics_totals(self):
        exp = NetworkExperiment(SMALL, seed=7, collect_metrics=True)
        result = exp.run(2)
        merged = result.merged_metrics()
        assert merged.counter("experiment.runs") == 2
        assert merged.counter("experiment.pairs") == sum(
            r.n_pairs for r in result.runs
        )

    def test_metrics_do_not_affect_equality_or_results(self):
        plain = NetworkExperiment(SMALL, seed=7).run(2)
        instrumented = NetworkExperiment(
            SMALL, seed=7, collect_metrics=True
        ).run(2)
        assert instrumented.runs == plain.runs

    def test_default_leaves_metrics_unset(self):
        result = NetworkExperiment(SMALL, seed=7).run(1)
        assert result.runs[0].metrics is None
        assert result.merged_metrics().counters == {}

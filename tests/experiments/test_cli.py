"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.runs == 5
        assert args.seed == 2011

    def test_figure5_options(self):
        args = build_parser().parse_args(
            ["figure5", "--q", "60", "--link-model", "codes"]
        )
        assert args.q == 60
        assert args.link_model == "codes"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])


class TestCommands:
    def test_theory_runs(self, capsys):
        assert main(["theory", "--q", "40"]) == 0
        out = capsys.readouterr().out
        assert "Theorems 1-4" in out
        assert "P_minus" in out

    def test_theory_latency_values(self, capsys):
        main(["theory"])
        out = capsys.readouterr().out
        # T_D at defaults ~ 1.70 s appears in the table.
        assert "1.70" in out

    def test_figure4_small(self, capsys):
        # One tiny run exercises the whole pipeline end to end.
        assert main(
            ["--runs", "1", "--seed", "1", "figure4", "--share-count", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "p_jrsnd" in out


class TestChartFlag:
    def test_chart_flag_parsed(self):
        args = build_parser().parse_args(["--chart", "figure2"])
        assert args.chart

    def test_chart_default_off(self):
        assert not build_parser().parse_args(["figure2"]).chart


class TestDsssCommand:
    def test_options_parsed(self):
        args = build_parser().parse_args(
            ["dsss", "--messages", "7", "--ecc-backend", "naive",
             "--burst", "0.1"]
        )
        assert args.messages == 7
        assert args.ecc_backend == "naive"
        assert args.burst == 0.1

    def test_defaults(self):
        args = build_parser().parse_args(["dsss"])
        assert args.messages == 100
        assert args.ecc_backend == "vectorized"
        assert args.burst == 0.2

    def test_burst_recovered_and_counters_visible(
        self, tmp_path, capsys
    ):
        from repro.obs import MetricsSnapshot

        out = tmp_path / "metrics.json"
        assert main(
            ["--seed", "3", "--metrics-out", str(out),
             "dsss", "--messages", "10"]
        ) == 0
        text = capsys.readouterr().out
        # A 20% burst sits well inside the mu=1 erasure capacity, so
        # every HELLO decodes.
        assert "success_rate" in text
        assert "1.0000" in text
        snapshot = MetricsSnapshot.from_json(out.read_text())
        assert snapshot.counter("ecc.symbols_decoded.vectorized") > 0
        assert snapshot.counter("cache.rs_codec.hits") > 0
        # Round two replays every waveform: one hit per miss.
        assert snapshot.counter("cache.waveform.misses") == 10
        assert snapshot.counter("cache.waveform.hits") == 10

    def test_naive_backend_counts_separately(self, tmp_path):
        from repro.obs import MetricsSnapshot

        out = tmp_path / "metrics.json"
        assert main(
            ["--seed", "3", "--metrics-out", str(out),
             "dsss", "--messages", "5", "--ecc-backend", "naive"]
        ) == 0
        snapshot = MetricsSnapshot.from_json(out.read_text())
        assert snapshot.counter("ecc.symbols_decoded.naive") > 0


class TestMetricsOut:
    def test_flag_parsed(self):
        args = build_parser().parse_args(
            ["--metrics-out", "m.json", "theory"]
        )
        assert args.metrics_out == "m.json"

    def test_default_off(self):
        assert build_parser().parse_args(["theory"]).metrics_out is None

    def test_snapshot_written_and_round_trips(self, tmp_path, capsys):
        from repro.obs import MetricsSnapshot

        out = tmp_path / "metrics.json"
        assert main(
            [
                "--runs", "1", "--seed", "1",
                "--metrics-out", str(out),
                "figure4", "--share-count", "40",
            ]
        ) == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        snapshot = MetricsSnapshot.from_json(out.read_text())
        assert snapshot.counter("experiment.runs") > 0
        assert snapshot.counter("experiment.pairs") > 0
        assert "experiment.run_seconds" in snapshot.timers

    def test_no_flag_writes_nothing(self, tmp_path, capsys):
        from repro import obs

        main(["theory"])
        assert obs.current() is obs.NULL
        assert list(tmp_path.iterdir()) == []

"""Tests for the multiprocess Monte Carlo runner."""

import pytest

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.errors import ConfigurationError
from repro.experiments.parallel import run_parallel
from repro.experiments.runner import NetworkExperiment

SMALL = JRSNDConfig(
    n_nodes=300,
    codes_per_node=15,
    share_count=12,
    n_compromised=8,
    field_width=2000.0,
    field_height=2000.0,
    tx_range=300.0,
)


class TestRunParallel:
    def test_matches_serial_exactly(self):
        """Per-run seeding depends only on (seed, index), so the
        parallel path reproduces the serial one bit-for-bit."""
        serial = NetworkExperiment(SMALL, seed=6).run(4)
        parallel = run_parallel(SMALL, seed=6, runs=4, processes=2)
        assert parallel.runs == serial.runs

    def test_single_worker_path(self):
        serial = NetworkExperiment(SMALL, seed=6).run(2)
        inline = run_parallel(SMALL, seed=6, runs=2, processes=1)
        assert inline.runs == serial.runs

    def test_strategy_and_link_model_forwarded(self):
        serial = NetworkExperiment(
            SMALL, seed=3, strategy=JammerStrategy.RANDOM,
            link_model="independent",
        ).run(2)
        parallel = run_parallel(
            SMALL, seed=3, runs=2, processes=2,
            strategy=JammerStrategy.RANDOM, link_model="independent",
        )
        assert parallel.runs == serial.runs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_parallel(SMALL, seed=1, runs=0)
        with pytest.raises(ConfigurationError):
            run_parallel(SMALL, seed=1, runs=2, processes=0)

"""Tests for the multiprocess Monte Carlo runner."""

import multiprocessing

import pytest

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.parallel import run_parallel
from repro.experiments.runner import NetworkExperiment

SMALL = JRSNDConfig(
    n_nodes=300,
    codes_per_node=15,
    share_count=12,
    n_compromised=8,
    field_width=2000.0,
    field_height=2000.0,
    tx_range=300.0,
)


class TestRunParallel:
    def test_matches_serial_exactly(self):
        """Per-run seeding depends only on (seed, index), so the
        parallel path reproduces the serial one bit-for-bit."""
        serial = NetworkExperiment(SMALL, seed=6).run(4)
        parallel = run_parallel(SMALL, seed=6, runs=4, processes=2)
        assert parallel.runs == serial.runs

    def test_single_worker_path(self):
        serial = NetworkExperiment(SMALL, seed=6).run(2)
        inline = run_parallel(SMALL, seed=6, runs=2, processes=1)
        assert inline.runs == serial.runs

    def test_strategy_and_link_model_forwarded(self):
        serial = NetworkExperiment(
            SMALL, seed=3, strategy=JammerStrategy.RANDOM,
            link_model="independent",
        ).run(2)
        parallel = run_parallel(
            SMALL, seed=3, runs=2, processes=2,
            strategy=JammerStrategy.RANDOM, link_model="independent",
        )
        assert parallel.runs == serial.runs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_parallel(SMALL, seed=1, runs=0)
        with pytest.raises(ConfigurationError):
            run_parallel(SMALL, seed=1, runs=2, processes=0)


class TestInstrumentedParallel:
    def test_counter_totals_match_serial(self):
        """Per-run registries are deterministic, so the merged counter
        totals agree across execution paths for the same seed."""
        serial = NetworkExperiment(
            SMALL, seed=6, collect_metrics=True
        ).run(3)
        parallel = run_parallel(
            SMALL, seed=6, runs=3, processes=2, collect_metrics=True
        )
        assert parallel.runs == serial.runs
        assert (
            parallel.merged_metrics().counters
            == serial.merged_metrics().counters
        )

    def test_snapshots_survive_pickling(self):
        result = run_parallel(
            SMALL, seed=6, runs=2, processes=2, collect_metrics=True
        )
        for run in result.runs:
            assert run.metrics is not None
            assert run.metrics.counter("experiment.runs") == 1


class TestFailureHandling:
    @staticmethod
    def _failing_run_once(self, run_index):
        if run_index == 1:
            raise RuntimeError(f"synthetic failure in run {run_index}")
        return self._execute_run(run_index)

    def test_failures_tagged_and_completed_preserved(self, monkeypatch):
        from repro.errors import ParallelExecutionError

        monkeypatch.setattr(
            NetworkExperiment, "run_once", self._failing_run_once
        )
        with pytest.raises(ParallelExecutionError) as excinfo:
            run_parallel(SMALL, seed=6, runs=3, processes=1)
        err = excinfo.value
        assert [index for index, _ in err.failures] == [1]
        assert "synthetic failure" in err.failures[0][1]
        assert len(err.completed.runs) == 2

    @pytest.mark.parametrize(
        "exc",
        [
            SimulationError("domain failure"),
            ValueError("numpy shape mismatch"),
            KeyError("missing pool code"),
        ],
        ids=["repro-error", "value-error", "lookup-error"],
    )
    def test_trapped_families_come_back_as_data(self, monkeypatch, exc):
        """Regression for the JRS003 narrowing: ``_one_run`` traps the
        concrete :data:`WORKER_TRAPPED_ERRORS` families (not a blanket
        ``except Exception``), and each still travels back tagged with
        its run index instead of aborting the map."""
        from repro.errors import ParallelExecutionError

        def failing(self, run_index):
            if run_index == 1:
                raise exc
            return self._execute_run(run_index)

        monkeypatch.setattr(NetworkExperiment, "run_once", failing)
        with pytest.raises(ParallelExecutionError) as excinfo:
            run_parallel(SMALL, seed=6, runs=3, processes=1)
        err = excinfo.value
        assert [index for index, _ in err.failures] == [1]
        assert type(exc).__name__ in err.failures[0][1]
        assert len(err.completed.runs) == 2

    def test_untrapped_exceptions_propagate(self, monkeypatch):
        """Cancellation and foreign exception types are not swallowed
        into the failure report: they abort the run immediately."""

        class ForeignPluginError(BaseException):
            pass

        def failing(self, run_index):
            raise ForeignPluginError("not part of the worker taxonomy")

        monkeypatch.setattr(NetworkExperiment, "run_once", failing)
        with pytest.raises(ForeignPluginError):
            run_parallel(SMALL, seed=6, runs=2, processes=1)

    def test_trapped_families_are_concrete(self):
        """The worker boundary must never regress to a blanket catch."""
        from repro.errors import WORKER_TRAPPED_ERRORS

        assert Exception not in WORKER_TRAPPED_ERRORS
        assert BaseException not in WORKER_TRAPPED_ERRORS

    def test_error_pickle_round_trip(self):
        """Regression: the default ``Exception.__reduce__`` only keeps
        ``args``, so an instance crossing a process boundary used to
        arrive with ``failures``/``completed`` stripped."""
        import pickle

        from repro.errors import ParallelExecutionError

        original = ParallelExecutionError(
            "2 of 5 runs failed",
            failures=[(1, "Traceback: boom"), (3, "Traceback: bang")],
            completed={"runs": 3},
        )
        restored = pickle.loads(pickle.dumps(original))
        assert str(restored) == str(original)
        assert restored.failures == original.failures
        assert restored.completed == original.completed

    def test_multiprocess_failures_drain_all_tasks(self, monkeypatch):
        """Fork start method propagates the patched method into the
        workers; the map still drains and keeps the good runs."""
        from repro.errors import ParallelExecutionError

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("requires fork start method")
        monkeypatch.setattr(
            NetworkExperiment, "run_once", self._failing_run_once
        )
        with pytest.raises(ParallelExecutionError) as excinfo:
            run_parallel(SMALL, seed=6, runs=3, processes=2)
        err = excinfo.value
        assert [index for index, _ in err.failures] == [1]
        assert len(err.completed.runs) == 2

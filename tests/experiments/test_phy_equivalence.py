"""Seeded distribution-equivalence of the chip and chipless PHY backends.

The chipless backend's whole claim is that it computes *the same random
variable* as the chip-level reference without materialising chips.  Two
layers of evidence:

- **exact** — at ``phy_noise_std = 0`` the two backends consume
  identical rng streams and must produce bit-for-bit identical outcomes
  for every message, sub-session, and pair, across jammer strategies
  and shared-code counts;
- **distributional** — with noise the chip backend draws per-chip AWGN
  and the chipless backend the equivalent per-bit ``N(0, sigma/sqrt(N))``
  correlation noise, so outcomes agree in distribution (checked with a
  normal-approximation tolerance on survival frequencies).

``tau = 0.25`` keeps the chip scan's false-lock probability at N = 512
negligible (~1e-12 per position) so stream identity is exact in
practice, not just in expectation.
"""

import math

import numpy as np
import pytest

from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.core.config import JRSNDConfig
from repro.core.dndp import DNDPSampler
from repro.dsss.phy import make_pair_phy
from repro.dsss.spread_code import CodePool
from repro.experiments.runner import NetworkExperiment

N_COMPROMISED_CODES = 20
POOL_SEED = 424242


def _config(**overrides):
    base = dict(
        n_nodes=40,
        codes_per_node=10,
        share_count=5,
        n_compromised=4,
        tau=0.25,
        field_width=800.0,
        field_height=800.0,
    )
    base.update(overrides)
    return JRSNDConfig(**base)


def _jamming(strategy):
    return JammingModel(
        strategy, frozenset(range(N_COMPROMISED_CODES)), z=8, mu=1.0
    )


@pytest.fixture(scope="module")
def pool():
    config = _config()
    return CodePool.generate(
        config.pool_size, config.code_length, POOL_SEED
    )


class TestExactEquivalenceNoiseless:
    @pytest.mark.parametrize("strategy", list(JammerStrategy))
    def test_subsession_outcomes_identical(self, pool, strategy):
        config = _config()
        jamming = _jamming(strategy)
        chip = make_pair_phy("chip", config, jamming, pool=pool)
        chipless = make_pair_phy("chipless", config, jamming)
        rng_chip = np.random.default_rng(2011)
        rng_chipless = np.random.default_rng(2011)
        for trial in range(40):
            code = trial % 40  # alternates compromised and safe codes
            assert chip.subsession_survives(
                code, rng_chip
            ) == chipless.subsession_survives(code, rng_chipless)
            # Stream identity: both backends consumed exactly the same
            # number of draws, including across early burst exits.
            assert rng_chip.integers(1 << 30) == rng_chipless.integers(
                1 << 30
            )

    @pytest.mark.parametrize(
        "strategy", [JammerStrategy.REACTIVE, JammerStrategy.RANDOM]
    )
    @pytest.mark.parametrize("n_shared", [1, 3, 6])
    def test_sample_pair_identical(self, pool, strategy, n_shared):
        config = _config()
        jamming = _jamming(strategy)
        chip_sampler = DNDPSampler(
            config, jamming,
            phy=make_pair_phy("chip", config, jamming, pool=pool),
        )
        chipless_sampler = DNDPSampler(
            config, jamming,
            phy=make_pair_phy("chipless", config, jamming),
        )
        rng_chip = np.random.default_rng(99)
        rng_chipless = np.random.default_rng(99)
        share_rng = np.random.default_rng(n_shared)
        for _ in range(12):
            # Mixed bags of compromised and safe shared codes.
            shared = share_rng.choice(
                2 * N_COMPROMISED_CODES, size=n_shared, replace=False
            )
            a = chip_sampler.sample_pair(
                [int(c) for c in shared], rng_chip
            )
            b = chipless_sampler.sample_pair(
                [int(c) for c in shared], rng_chipless
            )
            assert a.success == b.success
            assert a.surviving_codes == b.surviving_codes

    def test_redundancy_off_identical(self, pool):
        config = _config()
        jamming = _jamming(JammerStrategy.INTELLIGENT)
        chip_sampler = DNDPSampler(
            config, jamming,
            phy=make_pair_phy("chip", config, jamming, pool=pool),
        )
        chipless_sampler = DNDPSampler(
            config, jamming,
            phy=make_pair_phy("chipless", config, jamming),
        )
        rng_chip = np.random.default_rng(5)
        rng_chipless = np.random.default_rng(5)
        for _ in range(10):
            a = chip_sampler.sample_pair(
                [1, 2, 25], rng_chip, redundancy=False
            )
            b = chipless_sampler.sample_pair(
                [1, 2, 25], rng_chipless, redundancy=False
            )
            assert a.success == b.success


class TestDistributionalEquivalenceNoisy:
    """With AWGN the streams diverge (per-chip vs per-bit draws) but the
    outcome distributions must agree."""

    @pytest.mark.parametrize(
        "strategy,noise_std",
        [
            (JammerStrategy.REACTIVE, 3.0),
            (JammerStrategy.RANDOM, 6.0),
        ],
    )
    def test_hello_survival_rates_agree(self, pool, strategy, noise_std):
        config = _config(phy_noise_std=noise_std)
        jamming = _jamming(strategy)
        chip = make_pair_phy("chip", config, jamming, pool=pool)
        chipless = make_pair_phy("chipless", config, jamming)
        trials = 150
        rng_chip = np.random.default_rng(31)
        rng_chipless = np.random.default_rng(77)
        chip_rate = sum(
            chip.hello_received(3, rng_chip) for _ in range(trials)
        ) / trials
        chipless_rate = sum(
            chipless.hello_received(3, rng_chipless)
            for _ in range(trials)
        ) / trials
        pooled = (chip_rate + chipless_rate) / 2
        sigma = math.sqrt(
            max(pooled * (1 - pooled), 1e-9) * 2 / trials
        )
        assert abs(chip_rate - chipless_rate) < max(5 * sigma, 0.02)

    def test_safe_code_with_noise_agrees(self, pool):
        config = _config(phy_noise_std=8.0)
        jamming = _jamming(JammerStrategy.REACTIVE)
        chip = make_pair_phy("chip", config, jamming, pool=pool)
        chipless = make_pair_phy("chipless", config, jamming)
        trials = 150
        rng_chip = np.random.default_rng(13)
        rng_chipless = np.random.default_rng(17)
        code = 30  # safe: noise is the only loss mechanism
        chip_rate = sum(
            chip.hello_received(code, rng_chip) for _ in range(trials)
        ) / trials
        chipless_rate = sum(
            chipless.hello_received(code, rng_chipless)
            for _ in range(trials)
        ) / trials
        pooled = (chip_rate + chipless_rate) / 2
        sigma = math.sqrt(
            max(pooled * (1 - pooled), 1e-9) * 2 / trials
        )
        assert abs(chip_rate - chipless_rate) < max(5 * sigma, 0.02)
        # The noise must actually be doing something at sigma = 8.
        assert chipless_rate < 1.0


class TestRunnerLevel:
    """The experiment pipeline on the new backends."""

    def _micro_config(self, **overrides):
        base = dict(
            n_nodes=24,
            codes_per_node=6,
            share_count=4,
            n_compromised=3,
            tau=0.25,
            field_width=600.0,
            field_height=600.0,
        )
        base.update(overrides)
        return JRSNDConfig(**base)

    def test_chip_and_chipless_rates_agree(self):
        config = self._micro_config()
        chip_successes = 0
        chipless_successes = 0
        pairs = 0
        for seed in range(4):
            chip = NetworkExperiment(
                config.replace(phy_backend="chip"),
                seed=seed,
                strategy=JammerStrategy.RANDOM,
            ).run(1).runs[0]
            chipless = NetworkExperiment(
                config.replace(phy_backend="chipless"),
                seed=seed,
                strategy=JammerStrategy.RANDOM,
            ).run(1).runs[0]
            assert chip.n_pairs == chipless.n_pairs  # same placement
            chip_successes += chip.dndp_successes
            chipless_successes += chipless.dndp_successes
            pairs += chip.n_pairs
        p = (chip_successes + chipless_successes) / (2 * pairs)
        sigma = math.sqrt(max(p * (1 - p), 1e-9) * 2 / pairs)
        assert abs(chip_successes - chipless_successes) / pairs < max(
            5 * sigma, 0.05
        )

    def test_chipless_reference_equals_vectorized(self):
        config = self._micro_config(phy_backend="chipless")
        for strategy in (JammerStrategy.REACTIVE, JammerStrategy.RANDOM):
            reference = NetworkExperiment(
                config, seed=3, strategy=strategy,
                compute_backend="reference",
            ).run(3)
            vectorized = NetworkExperiment(
                config, seed=3, strategy=strategy,
                compute_backend="vectorized",
            ).run(3)
            assert reference == vectorized

    def test_chipless_parallel_equals_serial(self):
        from repro.experiments.parallel import run_parallel

        config = self._micro_config()
        serial = NetworkExperiment(
            config, seed=8, phy_backend="chipless"
        ).run(3)
        parallel = run_parallel(
            config, seed=8, runs=3, processes=2,
            phy_backend="chipless",
        )
        assert serial == parallel

    def test_phy_backend_override_argument(self):
        config = self._micro_config()
        experiment = NetworkExperiment(
            config, seed=1, phy_backend="chipless"
        )
        assert experiment.config.phy_backend == "chipless"
        with pytest.raises(Exception):
            NetworkExperiment(config, seed=1, phy_backend="bogus")

    def test_chipless_presets_resolve(self):
        from repro.experiments.scenarios import preset_config

        assert preset_config("tiny-chipless").phy_backend == "chipless"
        assert preset_config("paper-chipless").phy_backend == "chipless"
        assert preset_config("paper-chipless").n_nodes == 2000

    def test_phy_metrics_reported(self):
        from repro.obs import names as _names

        config = self._micro_config(phy_backend="chipless")
        result = NetworkExperiment(
            config, seed=2, collect_metrics=True
        ).run(1)
        metrics = result.merged_metrics()
        counters = dict(metrics.counters)
        assert counters.get(_names.PHY_PAIRS_SWEPT, 0) > 0

"""Unit tests for the terminal chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.charts import ascii_chart

ROWS = [
    {"m": 20.0, "p": 0.2, "q": 0.5},
    {"m": 60.0, "p": 0.5, "q": 0.9},
    {"m": 100.0, "p": 0.7, "q": 0.98},
]


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(ROWS, "m", ["p", "q"], title="demo")
        assert "demo" in chart
        assert "o p" in chart
        assert "x q" in chart
        body = chart.splitlines()
        assert any("o" in line for line in body[1:-2])
        assert any("x" in line for line in body[1:-2])

    def test_dimensions(self):
        chart = ascii_chart(ROWS, "m", ["p"], width=40, height=10)
        lines = chart.splitlines()
        # height rows + x-axis + tick labels + legend (no title)
        assert len(lines) == 10 + 3
        plot_lines = [line for line in lines if "|" in line]
        assert len(plot_lines) == 10
        assert all(len(line.split("|", 1)[1]) == 40 for line in plot_lines)

    def test_monotone_series_rises_left_to_right(self):
        chart = ascii_chart(ROWS, "m", ["p"], width=30, height=8)
        plot = [line.split("|", 1)[1] for line in chart.splitlines()
                if "|" in line]
        positions = []
        for column in range(30):
            for row, line in enumerate(plot):
                if line[column] == "o":
                    positions.append((column, row))
        # Later columns sit on earlier (higher) rows.
        columns = [c for c, _ in positions]
        rows_ = [r for _, r in positions]
        assert columns == sorted(columns)
        assert rows_ == sorted(rows_, reverse=True)

    def test_last_tick_not_clipped(self):
        chart = ascii_chart(ROWS, "m", ["p"])
        assert "100" in chart

    def test_flat_series_handled(self):
        flat = [{"x": 1.0, "y": 0.5}, {"x": 2.0, "y": 0.5}]
        chart = ascii_chart(flat, "x", ["y"])
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([], "m", ["p"])
        with pytest.raises(ConfigurationError):
            ascii_chart(ROWS, "m", [])
        with pytest.raises(ConfigurationError):
            ascii_chart(ROWS, "m", ["nope"])
        with pytest.raises(ConfigurationError):
            ascii_chart(ROWS, "nope", ["p"])
        with pytest.raises(ConfigurationError):
            ascii_chart(ROWS, "m", list("abcdefghij"))

"""Unit tests for the fault injectors and the composing plan."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    BurstJammer,
    ClockSkew,
    Duplicator,
    FaultPlan,
    MessageDrop,
    NodeChurn,
    NullFaultPlan,
    Reorderer,
)
from repro.utils.rng import derive_rng


class _StubTx:
    """Just enough of a Transmission for the injector hooks."""

    def __init__(self, sender=0, start=0.0, end=1.0, code_key=7):
        self.sender = sender
        self.start = start
        self.end = end
        self.duration = end - start
        self.code_key = code_key
        self.frame = object()


class _StubMedium:
    def __init__(self):
        self.jams = []

    def jam(self, tx, code_key, fraction):
        self.jams.append((code_key, fraction))
        return True


class TestBurstJammer:
    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            BurstJammer([(2.0, 1.0)])

    def test_periodic_schedule(self):
        jammer = BurstJammer.periodic(
            start=1.0, period=10.0, burst=2.0, count=3
        )
        assert jammer.windows == (
            (1.0, 3.0), (11.0, 13.0), (21.0, 23.0)
        )

    def test_overlap_fraction_jams_matching_share(self):
        jammer = BurstJammer([(0.5, 0.75)])
        plan = FaultPlan([jammer], seed=1)
        medium = _StubMedium()
        tx = _StubTx(start=0.0, end=1.0)
        jammer.on_transmit(tx, medium, plan)
        assert medium.jams == [(7, pytest.approx(0.25))]
        assert plan.counters["faults.burst_jammed"] == 1

    def test_no_overlap_no_jam(self):
        jammer = BurstJammer([(5.0, 6.0)])
        medium = _StubMedium()
        jammer.on_transmit(
            _StubTx(start=0.0, end=1.0), medium, FaultPlan([jammer])
        )
        assert medium.jams == []


class TestMessageDrop:
    def test_extremes(self):
        rng = derive_rng(1, "drop")
        never = MessageDrop(0.0)
        never.bind(None, rng)
        always = MessageDrop(1.0)
        always.bind(None, rng)
        tx = _StubTx()
        assert not never.drops(tx, 1, 0.0)
        assert always.drops(tx, 1, 0.0)

    def test_targeted_filters(self):
        rng = derive_rng(1, "drop")
        drop = MessageDrop(1.0, senders=[3], receivers=[4])
        drop.bind(None, rng)
        assert drop.drops(_StubTx(sender=3), 4, 0.0)
        assert not drop.drops(_StubTx(sender=9), 4, 0.0)
        assert not drop.drops(_StubTx(sender=3), 9, 0.0)


class TestDuplicatorReorderer:
    def test_duplicator_emits_gap(self):
        dup = Duplicator(1.0, gap=0.5)
        dup.bind(None, derive_rng(1, "dup"))
        assert dup.duplicate_delays(_StubTx(), 0, 0.0) == (0.5,)
        silent = Duplicator(0.0, gap=0.5)
        silent.bind(None, derive_rng(1, "dup"))
        assert silent.duplicate_delays(_StubTx(), 0, 0.0) == ()

    def test_reorderer_delay_bounded(self):
        reorder = Reorderer(1.0, max_delay=0.25)
        reorder.bind(None, derive_rng(1, "re"))
        delays = [reorder.delay(_StubTx(), 0, 0.0) for _ in range(50)]
        assert all(0.0 <= d <= 0.25 for d in delays)
        assert any(d > 0.0 for d in delays)


class TestNodeChurn:
    def test_explicit_windows(self):
        churn = NodeChurn([(2, 1.0, 3.0), (2, 5.0, 6.0)])
        assert churn.alive(2, 0.5)
        assert not churn.alive(2, 1.0)   # boundary: down at `down`
        assert not churn.alive(2, 2.9)
        assert churn.alive(2, 3.0)       # boundary: up at `up`
        assert not churn.alive(2, 5.5)
        assert churn.alive(3, 2.0)       # other nodes unaffected

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeChurn([(0, 3.0, 1.0)])

    def test_random_schedule_is_seed_deterministic(self):
        a = NodeChurn.random([0, 1], horizon=50.0,
                             mean_uptime=10.0, mean_downtime=2.0)
        b = NodeChurn.random([0, 1], horizon=50.0,
                             mean_uptime=10.0, mean_downtime=2.0)
        a.bind(None, derive_rng(9, "churn"))
        b.bind(None, derive_rng(9, "churn"))
        assert a.outages(0) == b.outages(0)
        assert a.outages(1) == b.outages(1)
        for node in (0, 1):
            for down, up in a.outages(node):
                assert 0.0 <= down < up <= 50.0


class TestClockSkew:
    def test_per_node_lag_is_query_order_independent(self):
        a = ClockSkew(max_skew=1e-3, max_drift=1e-6)
        b = ClockSkew(max_skew=1e-3, max_drift=1e-6)
        a.bind(None, derive_rng(4, "skew"))
        b.bind(None, derive_rng(4, "skew"))
        # Query in opposite orders: same answers.
        forward = [a.node_skew(n) for n in range(5)]
        backward = [b.node_skew(n) for n in reversed(range(5))]
        assert forward == list(reversed(backward))

    def test_delay_capped(self):
        skew = ClockSkew(max_skew=1e-3, max_drift=1.0, max_delay=2e-3)
        skew.bind(None, derive_rng(4, "skew"))
        assert skew.delay(_StubTx(), 0, now=1e9) == pytest.approx(2e-3)


class TestFaultPlan:
    def test_dead_sender_suppresses_transmission(self):
        churn = NodeChurn([(0, 0.0, 10.0)])
        plan = FaultPlan([churn], seed=0)
        plan.bind(None)
        assert not plan.on_transmit(_StubTx(sender=0, start=5.0), None)
        assert plan.counters["faults.tx_suppressed"] == 1
        assert plan.on_transmit(_StubTx(sender=1, start=5.0), None)

    def test_dead_receiver_drops_delivery(self):
        churn = NodeChurn([(3, 0.0, 10.0)])
        plan = FaultPlan([churn], seed=0)
        plan.bind(None)
        assert plan.delivery_actions(_StubTx(), 3, 5.0) == ()
        assert plan.counters["faults.rx_crashed"] == 1

    def test_delays_compose_additively(self):
        plan = FaultPlan(
            [ClockSkew(max_skew=1e-3), Duplicator(1.0, gap=0.5)],
            seed=2,
        )
        plan.bind(None)
        actions = plan.delivery_actions(_StubTx(), 0, 0.0)
        assert len(actions) == 2
        lag = actions[0]
        assert 0.0 <= lag <= 1e-3
        assert actions[1] == pytest.approx(lag + 0.5)
        assert plan.counters["faults.duplicated"] == 1

    def test_same_seed_same_draws(self):
        def sample(seed):
            plan = FaultPlan([MessageDrop(0.5)], seed=seed)
            plan.bind(None)
            return [
                plan.delivery_actions(_StubTx(), 0, 0.0)
                for _ in range(64)
            ]

        assert sample(7) == sample(7)
        assert sample(7) != sample(8)

    def test_null_plan_is_disabled_and_transparent(self):
        null = NullFaultPlan()
        assert null.enabled is False
        assert null.delivery_actions(_StubTx(), 0, 0.0) == (0.0,)
        assert null.on_transmit(_StubTx(), None)

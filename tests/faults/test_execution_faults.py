"""Unit tests for the execution-plane injectors.

The process-killing behaviour itself is exercised end to end in
``tests/experiments/test_pool_supervision.py``; here we pin the
deterministic decision logic (what would be killed, when) without
ever actually killing the test process.
"""

import pickle
import time

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ExecutionFaultPlan,
    RunHang,
    SlowWorker,
    WorkerKiller,
)


class TestWorkerKiller:
    def test_explicit_kill_map(self):
        killer = WorkerKiller(kills={3: 2})
        assert killer.kills_for(3) == 2
        assert killer.kills_for(0) == 0

    def test_seeded_draws_are_deterministic(self):
        a = WorkerKiller(seed=42, rate=0.5, max_kills=2)
        b = WorkerKiller(seed=42, rate=0.5, max_kills=2)
        decisions = [a.kills_for(index) for index in range(64)]
        assert decisions == [b.kills_for(index) for index in range(64)]
        # Rate 0.5 over 64 indices kills some but not all runs.
        assert 0 < sum(1 for k in decisions if k) < 64
        assert set(decisions) <= {0, 2}

    def test_seed_changes_decisions(self):
        a = [
            WorkerKiller(seed=1, rate=0.5).kills_for(i)
            for i in range(64)
        ]
        b = [
            WorkerKiller(seed=2, rate=0.5).kills_for(i)
            for i in range(64)
        ]
        assert a != b

    def test_rate_zero_never_kills(self):
        killer = WorkerKiller(seed=7, rate=0.0)
        assert all(
            killer.kills_for(index) == 0 for index in range(32)
        )
        # Safe to invoke in-process: never reaches os.kill.
        killer.before_run(0, 0)

    def test_attempt_gating_lets_the_retry_through(self):
        """An attempt at or past the kill budget must not kill — this
        is what guarantees a retried run eventually succeeds."""
        killer = WorkerKiller(kills={4: 2})
        # attempts 2+ survive; calling in-process proves no os.kill.
        killer.before_run(4, 2)
        killer.before_run(4, 5)
        killer.before_run(0, 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerKiller(rate=1.5)
        with pytest.raises(ConfigurationError):
            WorkerKiller(max_kills=-1)

    def test_picklable(self):
        killer = WorkerKiller(kills={1: 1})
        clone = pickle.loads(pickle.dumps(killer))
        assert clone.kills_for(1) == 1


class TestRunHang:
    def test_only_selected_attempts_hang(self):
        hang = RunHang(hangs={2: 1}, duration=5.0)
        start = time.monotonic()
        hang.before_run(0, 0)  # not selected
        hang.before_run(2, 1)  # attempt past the hang budget
        assert time.monotonic() - start < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunHang(hangs={}, duration=0.0)


class TestSlowWorker:
    def test_delays(self):
        slow = SlowWorker(delay=0.05)
        start = time.monotonic()
        slow.before_run(0, 0)
        assert time.monotonic() - start >= 0.04

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlowWorker(delay=-0.1)


class TestExecutionFaultPlan:
    def test_empty_plan_is_inert(self):
        plan = ExecutionFaultPlan()
        assert not plan.enabled
        plan.before_run(0, 0)  # no-op

    def test_runs_injectors_in_order(self):
        calls = []

        class Recorder(SlowWorker):
            def before_run(self, run_index, attempt):
                calls.append((self.delay, run_index, attempt))

        plan = ExecutionFaultPlan(
            (Recorder(delay=0.0), Recorder(delay=1.0))
        )
        assert plan.enabled
        plan.before_run(3, 1)
        assert calls == [(0.0, 3, 1), (1.0, 3, 1)]

    def test_picklable(self):
        plan = ExecutionFaultPlan(
            (WorkerKiller(seed=9, rate=0.25), SlowWorker(delay=0.0))
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.injectors[0].kills_for(5) == plan.injectors[
            0
        ].kills_for(5)

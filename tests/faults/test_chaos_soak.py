"""Chaos soak tests: the acceptance gate of the fault subsystem.

Under a seeded :class:`~repro.faults.FaultPlan` mixing burst jamming,
message drop, node churn, clock skew, duplication and reordering, the
simulation must always terminate and the :class:`InvariantChecker` must
report zero violations; with every injector disabled the run must be
bit-identical to a run with no plan attached at all.
"""

import pytest

from repro.experiments.chaos import (
    chaos_config,
    default_chaos_plan,
    run_chaos,
)
from repro.experiments.scenarios import build_event_network
from repro.faults import (
    FaultPlan,
    InvariantChecker,
    NullFaultPlan,
)


def _run_fingerprint(config, seed, faults):
    """Everything observable about one fixed-scenario run."""
    net = build_event_network(config, seed=seed, faults=faults)
    for node in net.nodes:
        node.initiate_dndp()
    net.simulator.run(until=30.0)
    start = net.simulator.now
    for node in net.nodes:
        node.initiate_mndp(nu=3)
    net.simulator.run(until=start + 100.0)
    return (
        net.logical_pairs(),
        dict(net.trace.counters()),
        net.medium.delivered_count,
        net.medium.jammed_count,
        [node.outcome() for node in net.nodes],
    )


class TestChaosSoak:
    @pytest.mark.parametrize("seed", [3, 17, 2011])
    def test_soak_terminates_with_zero_violations(self, seed):
        """The headline guarantee: >= 4 fault types, graceful
        degradation, every invariant intact."""
        config = chaos_config(7)
        plan = default_chaos_plan(config, seed=seed, duration=40.0)
        # The default mix composes all six injector types.
        assert len(plan.injectors) >= 4
        report = run_chaos(config, seed=seed, duration=40.0, plan=plan)
        assert report.terminated
        assert report.violations == ()
        assert report.events > 0
        # The plan actually did something hostile.
        assert sum(plan.counters.values()) > 0

    def test_null_plan_bit_identical_to_no_plan(self):
        """NullFaultPlan (the disabled default) must not perturb one
        bit of the simulation relative to faults=None."""
        config = chaos_config(6)
        baseline = _run_fingerprint(config, seed=11, faults=None)
        nulled = _run_fingerprint(config, seed=11, faults=NullFaultPlan())
        assert nulled == baseline

    def test_empty_enabled_plan_bit_identical_to_no_plan(self):
        """An *enabled* plan with no injectors routes every delivery
        through the fault path; the synchronous delay<=0 branch keeps
        ordering bit-identical to the legacy direct call."""
        config = chaos_config(6)
        baseline = _run_fingerprint(config, seed=11, faults=None)
        empty = _run_fingerprint(config, seed=11, faults=FaultPlan([]))
        assert empty == baseline

    def test_faulted_run_loses_but_never_invents_neighbors(self):
        """Faults may cost links; they must never create false ones."""
        config = chaos_config(6)
        benign = _run_fingerprint(config, seed=11, faults=None)
        plan = default_chaos_plan(config, seed=5, duration=130.0,
                                  drop=0.15)
        hostile = _run_fingerprint(config, seed=11, faults=plan)
        assert hostile[0] <= benign[0]

    def test_report_surface(self):
        config = chaos_config(5)
        report = run_chaos(config, seed=9, duration=20.0)
        assert report.ok is (report.terminated and not report.violations)
        lines = report.summary_lines()
        assert any("chaos soak" in line for line in lines)
        assert report.fault_counters  # the mix injected something


class TestInvariantChecker:
    def test_monotone_clock_watch(self):
        checker = InvariantChecker()
        checker.on_event(1.0)
        checker.on_event(2.0)
        checker.on_event(1.5)  # regression
        assert [v.name for v in checker.violations] == ["monotone-clock"]
        assert checker.events_seen == 3

    def test_false_neighbor_detection(self):
        """Teleporting an established neighbor out of range must trip
        the false-neighbor audit."""
        config = chaos_config(6)
        net = build_event_network(config, seed=11)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=30.0)
        assert net.logical_pairs()
        linked = next(
            node for node in net.nodes if node.logical_neighbors
        )
        linked.position = (1e6, 1e6)
        checker = InvariantChecker()
        checker.check_network(net)
        assert any(
            v.name == "false-neighbor" for v in checker.violations
        )

    def test_monitor_conservation_detection(self):
        """Tampering with a node's refcount table must be caught."""
        config = chaos_config(5)
        net = build_event_network(config, seed=3)
        checker = InvariantChecker()
        assert checker.check_network(net) == []
        net.nodes[0]._realtime[0] = 99  # leak one refcount
        assert any(
            v.name == "monitor-conservation"
            for v in checker.check_network(net)
        )

    def test_violation_list_is_bounded(self):
        checker = InvariantChecker()
        for k in range(200):
            checker.on_event(float(-k))
        assert len(checker.violations) <= 50

"""Reference vs vectorized pre-distribution assignment equivalence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predistribution.authority import PreDistributor


class TestAssignBackends:
    @pytest.mark.parametrize(
        "n,m,l",
        [
            (10, 3, 2),       # no virtual nodes
            (11, 3, 4),       # virtual padding
            (40, 10, 40),     # one subset per round
            (97, 7, 13),      # awkward arithmetic
        ],
    )
    def test_identical_assignments(self, n, m, l):
        distributor = PreDistributor(n, m, l)
        for seed in (0, 1, 99):
            want = distributor.assign(
                np.random.default_rng(seed), backend="reference"
            )
            got = distributor.assign(
                np.random.default_rng(seed), backend="vectorized"
            )
            assert want.node_codes == got.node_codes
            assert want.code_holders == got.code_holders
            # Key insertion order matters for deterministic iteration.
            assert list(want.code_holders) == list(got.code_holders)
            assert want.pool_size == got.pool_size

    def test_same_rng_stream_consumption(self):
        # Both backends draw exactly one permutation per round, so a
        # draw made *after* assign must agree between them.
        distributor = PreDistributor(23, 5, 4)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        distributor.assign(rng_a, backend="reference")
        distributor.assign(rng_b, backend="vectorized")
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_node_codes_are_python_ints(self):
        assignment = PreDistributor(9, 2, 3).assign(
            np.random.default_rng(3)
        )
        for codes in assignment.node_codes:
            assert all(type(code) is int for code in codes)
        for holders in assignment.code_holders.values():
            assert all(type(node) is int for node in holders)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            PreDistributor(9, 2, 3).assign(
                np.random.default_rng(0), backend="fast"
            )

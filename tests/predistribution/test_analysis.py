"""Unit tests for Eqs. (1) and (2) against Monte Carlo."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predistribution.analysis import (
    code_compromise_probability,
    expected_compromised_codes,
    expected_shared_codes,
    probability_at_least_one_shared,
    shared_code_pmf,
    shared_codes_probability,
)
from repro.predistribution.authority import PreDistributor


class TestEquation1:
    def test_pmf_sums_to_one(self):
        pmf = shared_code_pmf(2000, 100, 40)
        assert pmf.sum() == pytest.approx(1.0)

    def test_binomial_form(self):
        # Pr[x] = C(m,x) p^x (1-p)^(m-x) with p = (l-1)/(n-1).
        n, m, l = 100, 10, 20
        p = (l - 1) / (n - 1)
        for x in (0, 3, 10):
            expected = math.comb(m, x) * p**x * (1 - p) ** (m - x)
            assert shared_codes_probability(x, n, m, l) == pytest.approx(
                expected
            )

    def test_out_of_support(self):
        assert shared_codes_probability(11, 100, 10, 20) == 0.0
        assert shared_codes_probability(-1, 100, 10, 20) == 0.0

    def test_expected_value(self):
        assert expected_shared_codes(2000, 100, 40) == pytest.approx(
            100 * 39 / 1999
        )

    def test_at_least_one(self):
        n, m, l = 2000, 100, 40
        assert probability_at_least_one_shared(n, m, l) == pytest.approx(
            1.0 - shared_codes_probability(0, n, m, l)
        )

    def test_matches_simulation(self, rng):
        """Eq. (1) against the actual assignment procedure."""
        n, m, l = 120, 8, 12
        distributor = PreDistributor(n, m, l)
        counts = np.zeros(m + 1)
        pairs = 0
        for _ in range(30):
            assignment = distributor.assign(rng)
            for a in range(0, n, 7):
                for b in range(a + 1, n, 13):
                    counts[len(assignment.shared_codes(a, b))] += 1
                    pairs += 1
        empirical = counts / pairs
        theory = shared_code_pmf(n, m, l)
        # Total variation distance small.
        assert np.abs(empirical - theory).sum() < 0.08

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shared_codes_probability(1, 1, 5, 2)
        with pytest.raises(ConfigurationError):
            shared_codes_probability(1, 10, 0, 2)


class TestEquation2:
    def test_zero_compromise(self):
        assert code_compromise_probability(2000, 40, 0) == 0.0

    def test_certain_compromise(self):
        # q > n - l guarantees a holder is captured.
        assert code_compromise_probability(50, 40, 11) == 1.0

    def test_closed_form(self):
        n, l, q = 100, 10, 5
        expected = 1.0 - (
            math.comb(n - l, q) / math.comb(n, q)
        )
        assert code_compromise_probability(n, l, q) == pytest.approx(
            expected
        )

    def test_monotone_in_q(self):
        values = [
            code_compromise_probability(2000, 40, q) for q in range(0, 101, 10)
        ]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_monotone_in_l(self):
        values = [
            code_compromise_probability(2000, l, 20) for l in (5, 20, 40, 100)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_matches_simulation(self, rng):
        n, m, l, q = 100, 6, 10, 8
        distributor = PreDistributor(n, m, l)
        total, compromised = 0, 0
        for _ in range(40):
            assignment = distributor.assign(rng)
            nodes = rng.choice(n, size=q, replace=False)
            captured = assignment.compromised_codes(nodes.tolist())
            total += distributor.pool_size
            compromised += len(captured)
        empirical = compromised / total
        theory = code_compromise_probability(n, l, q)
        assert empirical == pytest.approx(theory, abs=0.03)

    def test_expected_codes(self):
        s = 5000
        assert expected_compromised_codes(
            s, 2000, 40, 20
        ) == pytest.approx(s * code_compromise_probability(2000, 40, 20))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            code_compromise_probability(2000, 40, -1)
        with pytest.raises(ConfigurationError):
            expected_compromised_codes(0, 2000, 40, 5)

"""Unit tests for gamma-counter local revocation."""

import pytest

from repro.errors import ConfigurationError, RevokedCodeError
from repro.predistribution.revocation import RevocationList


class TestRevocation:
    def test_initial_state(self):
        rev = RevocationList([1, 2, 3], gamma=2)
        assert rev.active_codes() == {1, 2, 3}
        assert rev.counter(1) == 0
        assert not rev.revoked

    def test_revokes_at_gamma(self):
        """The gamma-th invalid request tips the code — not the
        (gamma+1)-th, which would let each victim waste gamma + 1
        verifications and break the paper's (l-1)*gamma bound."""
        rev = RevocationList([1], gamma=2)
        assert not rev.record_invalid_request(1)  # counter 1
        assert rev.record_invalid_request(1)  # counter 2 == gamma -> revoke
        assert rev.revoked == {1}
        assert not rev.is_active(1)

    def test_exactly_gamma_requests_revoke(self):
        gamma = 5
        rev = RevocationList([7], gamma=gamma)
        tipped = [rev.record_invalid_request(7) for _ in range(gamma)]
        assert tipped == [False] * (gamma - 1) + [True]
        assert rev.counter(7) == gamma

    def test_revoked_code_rejects_further_requests(self):
        rev = RevocationList([1], gamma=1)
        rev.record_invalid_request(1)
        with pytest.raises(RevokedCodeError):
            rev.record_invalid_request(1)

    def test_codes_independent(self):
        rev = RevocationList([1, 2], gamma=1)
        rev.record_invalid_request(1)
        assert rev.active_codes() == {2}
        assert rev.counter(2) == 0

    def test_unknown_code(self):
        rev = RevocationList([1], gamma=1)
        with pytest.raises(ConfigurationError):
            rev.record_invalid_request(9)
        with pytest.raises(ConfigurationError):
            rev.counter(9)

    def test_rejects_empty_code_set(self):
        with pytest.raises(ConfigurationError):
            RevocationList([], gamma=1)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            RevocationList([1], gamma=0)

    def test_gamma_property(self):
        assert RevocationList([1], gamma=3).gamma == 3

    def test_metrics_recorded(self):
        from repro.obs import MetricsRegistry, installed

        with installed(MetricsRegistry()) as registry:
            rev = RevocationList([1], gamma=2)
            rev.record_invalid_request(1)
            rev.record_invalid_request(1)
        snapshot = registry.snapshot()
        assert snapshot.counter("revocation.invalid_requests") == 2
        assert snapshot.counter("revocation.codes_revoked") == 1
        assert snapshot.events[0].category == "revocation.revoked"
        assert snapshot.events[0].fields == {"code": 1, "counter": 2}

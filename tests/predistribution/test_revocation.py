"""Unit tests for gamma-counter local revocation."""

import pytest

from repro.errors import ConfigurationError, RevokedCodeError
from repro.predistribution.revocation import RevocationList


class TestRevocation:
    def test_initial_state(self):
        rev = RevocationList([1, 2, 3], gamma=2)
        assert rev.active_codes() == {1, 2, 3}
        assert rev.counter(1) == 0
        assert not rev.revoked

    def test_revokes_after_gamma_exceeded(self):
        rev = RevocationList([1], gamma=2)
        assert not rev.record_invalid_request(1)  # counter 1
        assert not rev.record_invalid_request(1)  # counter 2 == gamma
        assert rev.record_invalid_request(1)  # counter 3 > gamma -> revoke
        assert rev.revoked == {1}
        assert not rev.is_active(1)

    def test_exactly_gamma_plus_one_requests(self):
        gamma = 5
        rev = RevocationList([7], gamma=gamma)
        tipped = [rev.record_invalid_request(7) for _ in range(gamma + 1)]
        assert tipped == [False] * gamma + [True]

    def test_revoked_code_rejects_further_requests(self):
        rev = RevocationList([1], gamma=1)
        rev.record_invalid_request(1)
        rev.record_invalid_request(1)
        with pytest.raises(RevokedCodeError):
            rev.record_invalid_request(1)

    def test_codes_independent(self):
        rev = RevocationList([1, 2], gamma=1)
        rev.record_invalid_request(1)
        rev.record_invalid_request(1)
        assert rev.active_codes() == {2}
        assert rev.counter(2) == 0

    def test_unknown_code(self):
        rev = RevocationList([1], gamma=1)
        with pytest.raises(ConfigurationError):
            rev.record_invalid_request(9)
        with pytest.raises(ConfigurationError):
            rev.counter(9)

    def test_rejects_empty_code_set(self):
        with pytest.raises(ConfigurationError):
            RevocationList([], gamma=1)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            RevocationList([1], gamma=0)

    def test_gamma_property(self):
        assert RevocationList([1], gamma=3).gamma == 3

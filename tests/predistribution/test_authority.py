"""Unit tests for the code pre-distribution scheme."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predistribution.authority import PreDistributor


class TestAssign:
    def test_every_node_gets_m_codes(self, rng):
        distributor = PreDistributor(60, codes_per_node=5, share_count=10)
        assignment = distributor.assign(rng)
        assert all(len(codes) == 5 for codes in assignment.node_codes)

    def test_each_code_shared_by_exactly_l_when_divisible(self, rng):
        distributor = PreDistributor(60, codes_per_node=5, share_count=10)
        assignment = distributor.assign(rng)
        counts = [
            len(assignment.holders_of(c)) for c in range(distributor.pool_size)
        ]
        assert all(count == 10 for count in counts)

    def test_one_code_per_round(self, rng):
        """Node codes come one per round: code // w == round index."""
        distributor = PreDistributor(40, codes_per_node=4, share_count=8)
        assignment = distributor.assign(rng)
        w = distributor.subsets_per_round
        for codes in assignment.node_codes:
            rounds = [code // w for code in codes]
            assert rounds == list(range(4))

    def test_virtual_nodes_when_not_divisible(self, rng):
        distributor = PreDistributor(57, codes_per_node=3, share_count=10)
        assert distributor.n_virtual == 3
        assignment = distributor.assign(rng)
        counts = [
            len(assignment.holders_of(c)) for c in range(distributor.pool_size)
        ]
        assert max(counts) <= 10
        assert min(counts) >= 10 - 3  # only l' codes short per round

    def test_pool_size(self):
        distributor = PreDistributor(60, codes_per_node=5, share_count=10)
        assert distributor.pool_size == 6 * 5

    def test_shared_codes_symmetric(self, rng):
        distributor = PreDistributor(30, codes_per_node=4, share_count=6)
        assignment = distributor.assign(rng)
        assert assignment.shared_codes(3, 7) == assignment.shared_codes(7, 3)

    def test_compromised_codes_union(self, rng):
        distributor = PreDistributor(30, codes_per_node=4, share_count=6)
        assignment = distributor.assign(rng)
        codes = assignment.compromised_codes([0, 1])
        assert codes == set(assignment.node_codes[0]) | set(
            assignment.node_codes[1]
        )

    def test_compromised_codes_bad_index(self, rng):
        distributor = PreDistributor(10, codes_per_node=2, share_count=5)
        assignment = distributor.assign(rng)
        with pytest.raises(ConfigurationError):
            assignment.compromised_codes([99])

    def test_deterministic_given_rng(self):
        distributor = PreDistributor(30, codes_per_node=4, share_count=6)
        a = distributor.assign(np.random.default_rng(5))
        b = distributor.assign(np.random.default_rng(5))
        assert a.node_codes == b.node_codes


class TestValidation:
    def test_rejects_l_below_two(self):
        with pytest.raises(ConfigurationError):
            PreDistributor(10, 2, share_count=1)

    def test_rejects_l_above_n(self):
        with pytest.raises(ConfigurationError):
            PreDistributor(10, 2, share_count=11)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            PreDistributor(0, 2, 2)


class TestNodeJoin:
    def test_join_within_virtual_budget(self, rng):
        distributor = PreDistributor(57, codes_per_node=3, share_count=10)
        assignment = distributor.assign(rng)
        extended, new = distributor.admit_new_nodes(assignment, 2, rng)
        assert new == [57, 58]
        assert all(len(extended.node_codes[i]) == 3 for i in new)
        # Share counts stay bounded by l.
        assert extended.max_share_count() <= 10

    def test_join_beyond_virtual_budget(self, rng):
        distributor = PreDistributor(60, codes_per_node=3, share_count=10)
        assignment = distributor.assign(rng)
        extended, new = distributor.admit_new_nodes(assignment, 4, rng)
        assert len(new) == 4
        # Extra distribution round: some codes now shared by l + 1.
        assert extended.max_share_count() <= 11

    def test_join_preserves_existing(self, rng):
        distributor = PreDistributor(20, codes_per_node=3, share_count=5)
        assignment = distributor.assign(rng)
        before = [list(codes) for codes in assignment.node_codes]
        extended, _ = distributor.admit_new_nodes(assignment, 3, rng)
        assert extended.node_codes[:20] == before

    def test_join_rejects_zero(self, rng):
        distributor = PreDistributor(20, codes_per_node=3, share_count=5)
        assignment = distributor.assign(rng)
        with pytest.raises(ConfigurationError):
            distributor.admit_new_nodes(assignment, 0, rng)

"""Reference vs vectorized neighbor-pair search equivalence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.field import RectangularField


class TestNeighborPairBackends:
    def test_identical_pairs_random_fields(self):
        rng = np.random.default_rng(11)
        for trial in range(15):
            width = float(rng.uniform(50, 1500))
            height = float(rng.uniform(50, 1500))
            tx_range = float(rng.uniform(10, max(width, height)))
            field = RectangularField(width, height, tx_range)
            n = int(rng.integers(0, 250))
            positions = [
                (float(x), float(y))
                for x, y in zip(
                    rng.uniform(0, width, n), rng.uniform(0, height, n)
                )
            ]
            want = field.neighbor_pairs(positions, backend="reference")
            got = field.neighbor_pairs(positions, backend="vectorized")
            assert want == got

    def test_boundary_distance_agrees(self):
        # Two nodes exactly tx_range apart: both backends use the same
        # correctly-rounded hypot, so the boundary decision matches.
        field = RectangularField(100.0, 100.0, 5.0)
        positions = [(0.0, 0.0), (3.0, 4.0), (0.0, 5.0), (0.0, 5.0001)]
        want = field.neighbor_pairs(positions, backend="reference")
        got = field.neighbor_pairs(positions, backend="vectorized")
        assert want == got
        assert (0, 1) in got and (0, 2) in got and (0, 3) not in got

    def test_returns_sorted_python_int_tuples(self):
        field = RectangularField(10.0, 10.0, 20.0)
        pairs = field.neighbor_pairs([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert pairs == sorted(pairs)
        assert all(
            type(i) is int and type(j) is int for i, j in pairs
        )

    def test_small_inputs(self):
        field = RectangularField(10.0, 10.0, 5.0)
        assert field.neighbor_pairs([]) == []
        assert field.neighbor_pairs([(1.0, 1.0)]) == []

    def test_unknown_backend_rejected(self):
        field = RectangularField(10.0, 10.0, 5.0)
        with pytest.raises(ConfigurationError):
            field.neighbor_pairs([(0.0, 0.0)], backend="kdtree")

"""Unit tests for placement and mobility models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.field import RectangularField
from repro.sim.mobility import (
    RandomWaypointModel,
    StaticPlacement,
    uniform_positions,
)


@pytest.fixture
def field():
    return RectangularField(1000, 800, 100)


class TestUniformPositions:
    def test_inside_field(self, field, rng):
        for position in uniform_positions(field, 200, rng):
            assert field.contains(position)

    def test_count(self, field, rng):
        assert len(uniform_positions(field, 17, rng)) == 17

    def test_rejects_zero(self, field, rng):
        with pytest.raises(ConfigurationError):
            uniform_positions(field, 0, rng)


class TestStaticPlacement:
    def test_time_invariant(self, field, rng):
        placement = StaticPlacement.uniform(field, 10, rng)
        assert placement.position(3, 0.0) == placement.position(3, 99.0)

    def test_n_nodes(self, field, rng):
        assert StaticPlacement.uniform(field, 10, rng).n_nodes == 10

    def test_positions_at(self, field, rng):
        placement = StaticPlacement.uniform(field, 5, rng)
        assert len(placement.positions_at(1.0)) == 5

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            StaticPlacement([])


class TestRandomWaypoint:
    def test_positions_stay_inside(self, field, rng):
        model = RandomWaypointModel(field, 5, (1.0, 5.0), 0.0, rng)
        for t in np.linspace(0, 500, 40):
            for node in range(5):
                assert field.contains(model.position(node, float(t)))

    def test_start_position_is_time_zero(self, field, rng):
        model = RandomWaypointModel(field, 3, (1.0, 2.0), 0.0, rng)
        first = model.position(0, 0.0)
        assert field.contains(first)

    def test_movement_continuous(self, field, rng):
        """Positions at close times are close (speed-bounded)."""
        model = RandomWaypointModel(field, 1, (1.0, 5.0), 0.0, rng)
        last = model.position(0, 0.0)
        for t in np.arange(0.5, 100, 0.5):
            current = model.position(0, float(t))
            assert RectangularField.distance(last, current) <= 5.0 * 0.5 + 1e-9
            last = current

    def test_pause_time_holds_position(self, field, rng):
        model = RandomWaypointModel(field, 1, (100.0, 100.0), 1000.0, rng)
        # After the first leg ends the node pauses for 1000 s.
        leg = model._legs[0][0]
        end = leg.end_time
        a = model.position(0, end + 1.0)
        b = model.position(0, end + 500.0)
        assert a == b == leg.end

    def test_rejects_negative_time(self, field, rng):
        model = RandomWaypointModel(field, 1, (1.0, 2.0), 0.0, rng)
        with pytest.raises(ConfigurationError):
            model.position(0, -1.0)

    def test_rejects_bad_speed_range(self, field, rng):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(field, 1, (5.0, 1.0), 0.0, rng)

    def test_positions_at(self, field, rng):
        model = RandomWaypointModel(field, 4, (1.0, 2.0), 0.0, rng)
        assert len(model.positions_at(10.0)) == 4

"""Unit tests for field geometry and neighbor queries."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.field import RectangularField, lens_overlap_fraction
from repro.sim.mobility import uniform_positions


class TestGeometry:
    def test_lens_fraction_value(self):
        assert lens_overlap_fraction() == pytest.approx(
            1.0 - 3.0 * math.sqrt(3.0) / (4.0 * math.pi)
        )

    def test_distance(self):
        assert RectangularField.distance((0, 0), (3, 4)) == pytest.approx(5)

    def test_contains(self):
        field = RectangularField(100, 50, 10)
        assert field.contains((0, 0))
        assert field.contains((100, 50))
        assert not field.contains((101, 0))

    def test_require_inside(self):
        field = RectangularField(100, 50, 10)
        with pytest.raises(ConfigurationError):
            field.require_inside((200, 0))

    def test_in_range_boundary_inclusive(self):
        field = RectangularField(100, 100, 10)
        assert field.in_range((0, 0), (10, 0))
        assert not field.in_range((0, 0), (10.01, 0))

    def test_area(self):
        assert RectangularField(100, 50, 10).area == 5000

    def test_expected_neighbors(self):
        field = RectangularField(5000, 5000, 300)
        g = field.expected_neighbors(2000)
        assert g == pytest.approx(1999 * math.pi * 300**2 / 25e6)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            RectangularField(0, 10, 5)


class TestNeighborPairs:
    def test_matches_brute_force(self, rng):
        field = RectangularField(1000, 1000, 120)
        positions = uniform_positions(field, 150, rng)
        fast = set(field.neighbor_pairs(positions))
        brute = {
            (i, j)
            for i in range(150)
            for j in range(i + 1, 150)
            if field.in_range(positions[i], positions[j])
        }
        assert fast == brute

    def test_empty(self):
        field = RectangularField(10, 10, 1)
        assert field.neighbor_pairs([]) == []

    def test_adjacency_symmetric(self, rng):
        field = RectangularField(500, 500, 100)
        positions = uniform_positions(field, 60, rng)
        adjacency = field.adjacency(positions)
        for node, neighbors in adjacency.items():
            for peer in neighbors:
                assert node in adjacency[peer]

    def test_common_neighbors(self):
        field = RectangularField(100, 100, 30)
        positions = [(0, 0), (20, 0), (40, 0), (10, 50)]
        adjacency = field.adjacency(positions)
        # nodes 0 and 2 are 40 apart (not neighbors); node 1 is common.
        assert field.common_neighbors(adjacency, 0, 2) == {1}

    def test_empirical_degree_matches_expectation(self, rng):
        field = RectangularField(3000, 3000, 200)
        degrees = []
        for _ in range(5):
            positions = uniform_positions(field, 500, rng)
            pairs = field.neighbor_pairs(positions)
            degrees.append(2 * len(pairs) / 500)
        # Border effects push the empirical degree slightly below.
        expected = field.expected_neighbors(500)
        assert 0.7 * expected < np.mean(degrees) <= expected

"""Unit tests for tracing and statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.trace import TraceRecorder


class TestCounters:
    def test_increment(self):
        trace = TraceRecorder()
        trace.increment("x")
        trace.increment("x", 4)
        assert trace.counter("x") == 5

    def test_missing_counter_is_zero(self):
        assert TraceRecorder().counter("nope") == 0

    def test_counters_snapshot(self):
        trace = TraceRecorder()
        trace.increment("a")
        assert trace.counters() == {"a": 1}


class TestSamples:
    def test_mean(self):
        trace = TraceRecorder()
        for value in (1.0, 2.0, 3.0):
            trace.sample("t", value)
        assert trace.mean("t") == pytest.approx(2.0)

    def test_mean_of_empty_is_none(self):
        assert TraceRecorder().mean("t") is None

    def test_percentile(self):
        trace = TraceRecorder()
        for value in range(1, 101):
            trace.sample("t", float(value))
        assert trace.percentile("t", 50) == pytest.approx(50.5)
        assert trace.percentile("t", 0) == 1.0
        assert trace.percentile("t", 100) == 100.0

    def test_percentile_validation(self):
        trace = TraceRecorder()
        with pytest.raises(ConfigurationError):
            trace.percentile("t", 101)

    def test_rejects_non_finite(self):
        trace = TraceRecorder()
        with pytest.raises(ConfigurationError):
            trace.sample("t", float("nan"))

    def test_summary(self):
        trace = TraceRecorder()
        trace.sample("a", 2.0)
        trace.sample("a", 4.0)
        assert trace.summary() == {"a": (2, 3.0)}


class TestEvents:
    def test_log_and_filter(self):
        trace = TraceRecorder()
        trace.log(1.0, "x", node=1)
        trace.log(2.0, "y", node=2)
        assert len(trace.events()) == 2
        assert trace.events("x")[0].detail == {"node": 1}

    def test_disabled_events(self):
        trace = TraceRecorder(keep_events=False)
        trace.log(1.0, "x")
        assert trace.events() == []

"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator, Timeout


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_at(2.0, order.append, "b")
        sim.call_at(1.0, order.append, "a")
        sim.call_at(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_same_time(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.call_at(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.call_at(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]
        assert sim.now == 1.5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, 1)
        sim.call_at(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.call_at(5.0, fired.append, 5)
        sim.run(until=2.0)
        sim.run()
        assert fired == [5]

    def test_call_after(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: sim.call_after(0.5, lambda: None))
        sim.run()
        assert sim.now == 1.5

    def test_rejects_past_scheduling(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1.0, lambda: None)

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.call_at(3.0, lambda: None)
        assert sim.peek() == 3.0


class TestEvents:
    def test_callbacks_fire_with_value(self):
        sim = Simulator()
        event = sim.event("e")
        got = []
        event.on_fire(got.append)
        event.succeed(42)
        assert got == [42]
        assert event.fired
        assert event.value == 42

    def test_late_callback_fires_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        got = []
        event.on_fire(got.append)
        assert got == ["x"]

    def test_double_fire_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()


class TestProcesses:
    def test_timeout_sequencing(self):
        sim = Simulator()
        trail = []

        def proc():
            trail.append(sim.now)
            yield Timeout(1.0)
            trail.append(sim.now)
            yield Timeout(2.0)
            trail.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trail == [0.0, 1.0, 3.0]

    def test_wait_on_event(self):
        sim = Simulator()
        event = sim.event()
        got = []

        def waiter():
            value = yield event
            got.append((sim.now, value))

        sim.process(waiter())
        sim.call_at(2.0, event.succeed, "ping")
        sim.run()
        assert got == [(2.0, "ping")]

    def test_wait_on_process(self):
        sim = Simulator()
        trail = []

        def inner():
            yield Timeout(1.0)
            trail.append("inner-done")
            return "result"

        def outer():
            process = sim.process(inner(), "inner")
            yield process
            trail.append(("outer", process.done.value))

        sim.process(outer(), "outer")
        sim.run()
        assert trail == ["inner-done", ("outer", "result")]

    def test_done_event_value(self):
        sim = Simulator()

        def proc():
            yield Timeout(0.5)
            return 99

        process = sim.process(proc())
        sim.run()
        assert process.done.fired
        assert process.done.value == 99

    def test_invalid_yield_rejected(self):
        sim = Simulator()

        def bad():
            yield "not a timeout"

        with pytest.raises(SimulationError):
            sim.process(bad())

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_immediate_process_completion(self):
        sim = Simulator()

        def instant():
            return 7
            yield  # pragma: no cover

        process = sim.process(instant())
        assert process.done.fired
        assert process.done.value == 7


class TestEdgeCases:
    def test_until_boundary_event_executes(self):
        """An event scheduled exactly at ``until`` fires (the stop
        condition is strictly ``when > until``)."""
        sim = Simulator()
        fired = []
        sim.call_at(2.0, fired.append, "boundary")
        sim.call_at(2.0 + 1e-9, fired.append, "past")
        sim.run(until=2.0)
        assert fired == ["boundary"]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_process_yields_already_done_process(self):
        sim = Simulator()
        trail = []

        def instant():
            return "early"
            yield  # pragma: no cover

        def outer():
            done_process = sim.process(instant(), "instant")
            assert done_process.done.fired
            yield done_process
            trail.append((sim.now, done_process.done.value))

        sim.process(outer(), "outer")
        sim.run()
        assert trail == [(0.0, "early")]

    def test_peek_and_pending_after_partial_runs(self):
        sim = Simulator()
        for when in (1.0, 2.0, 3.0):
            sim.call_at(when, lambda: None)
        assert sim.pending == 3
        assert sim.peek() == 1.0
        sim.run(until=1.5)
        assert sim.pending == 2
        assert sim.peek() == 2.0
        sim.run()
        assert sim.pending == 0
        assert sim.peek() is None

    def test_run_on_empty_heap_with_until(self):
        sim = Simulator()
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0


class TestExecutionAccounting:
    def test_events_executed_accumulates(self):
        sim = Simulator()
        for when in (1.0, 2.0, 3.0):
            sim.call_at(when, lambda: None)
        sim.run(until=1.5)
        assert sim.events_executed == 1
        sim.run()
        assert sim.events_executed == 3

    def test_heap_high_water(self):
        sim = Simulator()
        for when in (1.0, 2.0, 3.0):
            sim.call_at(when, lambda: None)
        sim.run()
        # Rescheduling from inside callbacks never exceeded 3 pending.
        assert sim.heap_high_water == 3

    def test_metrics_reported_once_per_run(self):
        from repro.obs import MetricsRegistry, installed

        sim = Simulator()
        sim.call_at(1.0, lambda: sim.call_after(1.0, lambda: None))
        with installed(MetricsRegistry()) as registry:
            sim.run()
        snap = registry.snapshot()
        assert snap.counter("sim.events_executed") == 2
        assert snap.gauges["sim.time"] == 2.0
        assert snap.max_gauges["sim.heap_high_water"] == 1.0

    def test_no_registry_accounting_still_works(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 1
        assert sim.heap_high_water == 1

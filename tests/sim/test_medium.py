"""Unit tests for the message-level radio medium."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.field import RectangularField
from repro.sim.medium import RadioMedium, Transmission


@pytest.fixture
def setup():
    simulator = Simulator()
    field = RectangularField(1000, 1000, 300)
    medium = RadioMedium(simulator, field, mu=1.0)
    return simulator, field, medium


def _register(medium, node, position):
    medium.register_node(node, lambda: position)


class TestDelivery:
    def test_delivers_to_listener_in_range(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (100, 0))
        got = []
        medium.listen(1, 7, got.append)
        medium.transmit(0, 7, "frame", duration=1.0)
        simulator.run()
        assert len(got) == 1
        assert got[0].frame == "frame"
        assert medium.delivered_count == 1

    def test_no_delivery_out_of_range(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (500, 0))
        got = []
        medium.listen(1, 7, got.append)
        medium.transmit(0, 7, "frame", duration=1.0)
        simulator.run()
        assert got == []

    def test_no_delivery_wrong_code(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        got = []
        medium.listen(1, 8, got.append)
        medium.transmit(0, 7, "frame", duration=1.0)
        simulator.run()
        assert got == []

    def test_sender_does_not_hear_itself(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        got = []
        medium.listen(0, 7, got.append)
        medium.transmit(0, 7, "frame", duration=1.0)
        simulator.run()
        assert got == []

    def test_delivery_at_transmission_end(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        times = []
        medium.listen(1, 7, lambda tx: times.append(simulator.now))
        medium.transmit(0, 7, "frame", duration=2.5)
        simulator.run()
        assert times == [2.5]

    def test_stop_listening(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        got = []
        medium.listen(1, 7, got.append)
        medium.stop_listening(1, 7)
        medium.transmit(0, 7, "frame", duration=1.0)
        simulator.run()
        assert got == []
        assert not medium.is_listening(1, 7)

    def test_multiple_listeners(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        _register(medium, 2, (20, 0))
        got = []
        medium.listen(1, 7, lambda tx: got.append(1))
        medium.listen(2, 7, lambda tx: got.append(2))
        medium.transmit(0, 7, "frame", duration=1.0)
        simulator.run()
        assert sorted(got) == [1, 2]


class TestJamming:
    def test_matching_code_jam_destroys(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        got = []
        medium.listen(1, 7, got.append)
        tx = medium.transmit(0, 7, "frame", duration=1.0)
        assert medium.jam(tx, 7, fraction=0.8)
        simulator.run()
        assert got == []
        assert medium.jammed_count == 1

    def test_wrong_code_jam_ignored(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        got = []
        medium.listen(1, 7, got.append)
        tx = medium.transmit(0, 7, "frame", duration=1.0)
        assert not medium.jam(tx, 9, fraction=1.0)
        simulator.run()
        assert len(got) == 1

    def test_jam_below_tolerance_survives(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        got = []
        medium.listen(1, 7, got.append)
        tx = medium.transmit(0, 7, "frame", duration=1.0)
        medium.jam(tx, 7, fraction=0.4)  # tolerance is 0.5 at mu=1
        simulator.run()
        assert len(got) == 1

    def test_jam_fractions_accumulate(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        got = []
        medium.listen(1, 7, got.append)
        tx = medium.transmit(0, 7, "frame", duration=1.0)
        medium.jam(tx, 7, fraction=0.3)
        medium.jam(tx, 7, fraction=0.3)
        simulator.run()
        assert got == []

    def test_effectiveness_scales(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        _register(medium, 1, (10, 0))
        got = []
        medium.listen(1, 7, got.append)
        tx = medium.transmit(0, 7, "frame", duration=1.0)
        medium.jam(tx, 7, fraction=0.8, effectiveness=0.5)  # 0.4 < 0.5
        simulator.run()
        assert len(got) == 1

    def test_jammer_observer_notified(self, setup):
        simulator, _, medium = setup
        _register(medium, 0, (0, 0))
        seen = []

        class Observer:
            def on_transmission(self, tx, medium_):
                seen.append(tx.code_key)

        medium.add_jammer(Observer())
        medium.transmit(0, 42, "frame", duration=1.0)
        simulator.run()
        assert seen == [42]


class TestValidation:
    def test_double_registration(self, setup):
        _, _, medium = setup
        _register(medium, 0, (0, 0))
        with pytest.raises(SimulationError):
            _register(medium, 0, (0, 0))

    def test_unregistered_listener(self, setup):
        _, _, medium = setup
        with pytest.raises(SimulationError):
            medium.listen(9, 7, lambda tx: None)

    def test_transmission_end(self):
        tx = Transmission(0, (0, 0), 7, "f", start=1.0, duration=2.0)
        assert tx.end == 3.0
        assert tx.jammed_fraction() == 0.0

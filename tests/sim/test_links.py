"""Unit tests for link models and their medium integration."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.field import RectangularField
from repro.sim.links import DiskLinkModel, LogNormalShadowingModel
from repro.sim.medium import RadioMedium


class TestDiskModel:
    def test_inside_outside(self, rng):
        model = DiskLinkModel(300.0)
        assert model.delivered(299.0, rng)
        assert model.delivered(300.0, rng)
        assert not model.delivered(301.0, rng)

    def test_probability_step(self):
        model = DiskLinkModel(300.0)
        assert model.reception_probability(100.0) == 1.0
        assert model.reception_probability(400.0) == 0.0

    def test_negative_distance(self):
        with pytest.raises(ConfigurationError):
            DiskLinkModel(10.0).reception_probability(-1.0)


class TestShadowingModel:
    def test_median_range_is_half(self):
        model = LogNormalShadowingModel(300.0, 3.0, 4.0)
        assert model.reception_probability(300.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        model = LogNormalShadowingModel(300.0, 3.0, 4.0)
        values = [
            model.reception_probability(d)
            for d in (50.0, 150.0, 300.0, 450.0, 900.0)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_zero_distance_certain(self):
        model = LogNormalShadowingModel(300.0)
        assert model.reception_probability(0.0) == 1.0

    def test_sigma_zero_reduces_to_disk(self, rng):
        model = LogNormalShadowingModel(300.0, 3.0, sigma_db=0.0)
        assert model.reception_probability(299.0) == 1.0
        assert model.reception_probability(301.0) == 0.0

    def test_sharper_with_higher_exponent(self):
        shallow = LogNormalShadowingModel(300.0, 2.0, 4.0)
        steep = LogNormalShadowingModel(300.0, 5.0, 4.0)
        # At 1.5x the range the steep model has a lower probability.
        assert steep.reception_probability(450.0) < (
            shallow.reception_probability(450.0)
        )

    def test_sampling_matches_probability(self, rng):
        model = LogNormalShadowingModel(300.0, 3.0, 6.0)
        for distance in (200.0, 300.0, 420.0):
            p = model.reception_probability(distance)
            hits = sum(
                model.delivered(distance, rng) for _ in range(4000)
            )
            assert hits / 4000 == pytest.approx(p, abs=0.03)

    def test_closed_form(self):
        """P(d) = Phi(-10 n log10(d/R) / sigma)."""
        model = LogNormalShadowingModel(300.0, 3.0, 4.0)
        d = 400.0
        margin = -30.0 * math.log10(d / 300.0)
        expected = 0.5 * (1 + math.erf(margin / (4.0 * math.sqrt(2))))
        assert model.reception_probability(d) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalShadowingModel(0.0)
        with pytest.raises(ConfigurationError):
            LogNormalShadowingModel(300.0, sigma_db=-1.0)


class TestMediumIntegration:
    def _setup(self, link_model, rng):
        simulator = Simulator()
        field = RectangularField(2000, 2000, 300)
        medium = RadioMedium(
            simulator, field, mu=1.0, link_model=link_model, link_rng=rng
        )
        medium.register_node(0, lambda: (0.0, 0.0))
        medium.register_node(1, lambda: (360.0, 0.0))  # beyond the disk
        return simulator, medium

    def test_disk_never_reaches_beyond_range(self, rng):
        simulator, medium = self._setup(DiskLinkModel(300.0), rng)
        got = []
        medium.listen(1, 7, got.append)
        for _ in range(50):
            medium.transmit(0, 7, "frame", duration=0.01)
        simulator.run()
        assert got == []

    def test_shadowing_sometimes_reaches_beyond_range(self, rng):
        model = LogNormalShadowingModel(300.0, 3.0, 6.0)
        simulator, medium = self._setup(model, rng)
        got = []
        medium.listen(1, 7, got.append)
        for _ in range(300):
            medium.transmit(0, 7, "frame", duration=0.01)
        simulator.run()
        expected = model.reception_probability(360.0)
        assert len(got) / 300 == pytest.approx(expected, abs=0.08)
        assert got  # fading delivers some frames past the disk edge

"""Unit tests for snapshot merging and the JSON wire format."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    HistogramStat,
    MetricsRegistry,
    MetricsSnapshot,
    TimerStat,
    TraceEvent,
)


def _sample_snapshot() -> MetricsSnapshot:
    reg = MetricsRegistry()
    reg.inc("runs", 3)
    reg.inc("pairs", 120)
    reg.gauge("sim.time", 12.5)
    reg.gauge_max("sim.heap_high_water", 40)
    reg.record_seconds("run_seconds", 0.75)
    reg.observe("hops", 2.0)
    reg.observe("hops", 3.0)
    reg.event("revoked", code=7, counter=2)
    return reg.snapshot()


class TestMerge:
    def test_counters_add(self):
        a = MetricsSnapshot(counters={"x": 1, "y": 2})
        b = MetricsSnapshot(counters={"x": 10})
        merged = a.merge(b)
        assert merged.counters == {"x": 11, "y": 2}

    def test_counter_totals_commute(self):
        a = MetricsSnapshot(counters={"x": 1})
        b = MetricsSnapshot(counters={"x": 5, "z": 2})
        assert a.merge(b).counters == b.merge(a).counters

    def test_gauges_last_wins_max_gauges_max(self):
        a = MetricsSnapshot(gauges={"g": 1.0}, max_gauges={"m": 5.0})
        b = MetricsSnapshot(gauges={"g": 9.0}, max_gauges={"m": 2.0})
        merged = a.merge(b)
        assert merged.gauges["g"] == 9.0
        assert merged.max_gauges["m"] == 5.0

    def test_timers_add(self):
        a = MetricsSnapshot(timers={"t": TimerStat(1, 0.5)})
        b = MetricsSnapshot(timers={"t": TimerStat(2, 1.0)})
        stat = a.merge(b).timers["t"]
        assert stat.count == 3
        assert stat.total_seconds == pytest.approx(1.5)

    def test_histograms_concatenate_in_order(self):
        a = MetricsSnapshot(histograms={"h": HistogramStat((1.0, 2.0))})
        b = MetricsSnapshot(histograms={"h": HistogramStat((3.0,))})
        assert a.merge(b).histograms["h"].values == (1.0, 2.0, 3.0)

    def test_merge_all_skips_none(self):
        a = MetricsSnapshot(counters={"x": 1})
        total = MetricsSnapshot.merge_all([a, None, a])
        assert total.counter("x") == 2

    def test_merge_all_empty(self):
        assert MetricsSnapshot.merge_all([]) == MetricsSnapshot()


class TestJsonRoundTrip:
    def test_round_trip_identity(self):
        snap = _sample_snapshot()
        again = MetricsSnapshot.from_json(snap.to_json())
        assert again == snap

    def test_to_json_is_sorted_and_versioned(self):
        snap = _sample_snapshot()
        data = snap.to_dict()
        assert data["schema"] == "repro.obs/1"
        assert list(data["counters"]) == sorted(data["counters"])

    def test_event_fields_survive(self):
        snap = _sample_snapshot()
        again = MetricsSnapshot.from_json(snap.to_json())
        assert again.events == (
            TraceEvent(seq=0, category="revoked",
                       fields={"code": 7, "counter": 2}),
        )

    def test_unknown_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsSnapshot.from_json('{"schema": "repro.obs/999"}')

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsSnapshot.from_json("not json")
        with pytest.raises(ConfigurationError):
            MetricsSnapshot.from_json('["a", "list"]')

    def test_empty_snapshot_round_trips(self):
        empty = MetricsSnapshot()
        assert MetricsSnapshot.from_json(empty.to_json()) == empty


class TestDerivedStats:
    def test_histogram_empty(self):
        stat = HistogramStat()
        assert stat.count == 0
        assert stat.minimum is None
        assert stat.maximum is None
        assert stat.mean is None

    def test_timer_empty_mean(self):
        assert TimerStat().mean_seconds is None

    def test_counter_accessor_default(self):
        assert MetricsSnapshot().counter("nope") == 0

"""Unit tests for the live metrics registry and its installation point."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import NULL, MetricsRegistry, NullRegistry, current, installed


class TestCounters:
    def test_inc_and_read(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_snapshot_counters(self):
        reg = MetricsRegistry()
        reg.inc("x", 2)
        assert reg.snapshot().counters == {"x": 2}


class TestGauges:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("t", 1.0)
        reg.gauge("t", 2.5)
        assert reg.snapshot().gauges == {"t": 2.5}

    def test_gauge_max_keeps_high_water(self):
        reg = MetricsRegistry()
        reg.gauge_max("hw", 3.0)
        reg.gauge_max("hw", 1.0)
        reg.gauge_max("hw", 7.0)
        assert reg.snapshot().max_gauges == {"hw": 7.0}


class TestTimers:
    def test_timer_accumulates(self):
        reg = MetricsRegistry()
        with reg.timer("work"):
            pass
        with reg.timer("work"):
            pass
        stat = reg.snapshot().timers["work"]
        assert stat.count == 2
        assert stat.total_seconds >= 0.0
        assert stat.mean_seconds is not None

    def test_record_seconds_direct(self):
        reg = MetricsRegistry()
        reg.record_seconds("io", 0.5)
        reg.record_seconds("io", 1.5)
        stat = reg.snapshot().timers["io"]
        assert stat.count == 2
        assert stat.total_seconds == pytest.approx(2.0)
        assert stat.mean_seconds == pytest.approx(1.0)


class TestHistograms:
    def test_observe_series(self):
        reg = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            reg.observe("h", value)
        stat = reg.snapshot().histograms["h"]
        assert stat.count == 3
        assert stat.total == pytest.approx(6.0)
        assert stat.minimum == 1.0
        assert stat.maximum == 3.0
        assert stat.mean == pytest.approx(2.0)


class TestEvents:
    def test_bounded_ring(self):
        reg = MetricsRegistry(max_events=2)
        reg.event("a", n=1)
        reg.event("b", n=2)
        reg.event("c", n=3)
        events = reg.snapshot().events
        assert [e.category for e in events] == ["b", "c"]
        assert events[-1].fields == {"n": 3}
        # Sequence numbers keep counting past evictions.
        assert events[-1].seq == 2

    def test_zero_disables(self):
        reg = MetricsRegistry(max_events=0)
        reg.event("a")
        assert reg.snapshot().events == ()

    def test_negative_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry(max_events=-1)


class TestAbsorbAndReset:
    def test_absorb_merges_all_kinds(self):
        child = MetricsRegistry()
        child.inc("c", 2)
        child.gauge("g", 1.0)
        child.gauge_max("m", 9.0)
        child.record_seconds("t", 0.25)
        child.observe("h", 4.0)
        child.event("e", k="v")
        parent = MetricsRegistry()
        parent.inc("c", 1)
        parent.gauge_max("m", 3.0)
        parent.absorb(child.snapshot())
        snap = parent.snapshot()
        assert snap.counter("c") == 3
        assert snap.gauges["g"] == 1.0
        assert snap.max_gauges["m"] == 9.0
        assert snap.timers["t"].count == 1
        assert snap.histograms["h"].values == (4.0,)
        assert snap.events[0].category == "e"

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 1.0)
        reg.event("e")
        reg.reset()
        snap = reg.snapshot()
        assert snap.counters == {}
        assert snap.histograms == {}
        assert snap.events == ()


class TestNullRegistry:
    def test_records_nothing(self):
        null = NullRegistry()
        null.inc("c")
        null.gauge("g", 1.0)
        null.gauge_max("m", 1.0)
        null.record_seconds("t", 1.0)
        null.observe("h", 1.0)
        null.event("e")
        with null.timer("t2"):
            pass
        snap = null.snapshot()
        assert snap.counters == {}
        assert snap.timers == {}
        assert not null.enabled

    def test_absorb_is_noop(self):
        child = MetricsRegistry()
        child.inc("c")
        NULL.absorb(child.snapshot())
        assert NULL.snapshot().counters == {}


class TestInstallation:
    def test_default_is_null(self):
        assert current() is NULL

    def test_installed_restores_previous(self):
        reg = MetricsRegistry()
        with installed(reg) as active:
            assert current() is reg
            assert active is reg
        assert current() is NULL

    def test_installed_restores_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with installed(reg):
                raise RuntimeError("boom")
        assert current() is NULL

    def test_install_none_restores_null(self):
        reg = MetricsRegistry()
        obs.install(reg)
        try:
            assert current() is reg
        finally:
            obs.install(None)
        assert current() is NULL

    def test_nesting(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with installed(outer):
            with installed(inner):
                current().inc("x")
            current().inc("y")
        assert inner.counter("x") == 1
        assert outer.counter("y") == 1
        assert outer.counter("x") == 0

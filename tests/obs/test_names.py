"""Tests for the central metric-name registry (repro.obs.names)."""

import re

import pytest

from repro.obs import names


class TestRegistry:
    def test_every_constant_is_well_formed(self):
        pattern = re.compile(names.NAME_PATTERN)
        for name in names.ALL_NAMES:
            assert pattern.match(name), name

    def test_constant_lookup_round_trips(self):
        for name, constant in names.CONSTANT_FOR.items():
            assert getattr(names, constant) == name

    def test_prefixes_are_not_registered_as_names(self):
        assert names.RETRY_PREFIX == "retry."
        assert names.RETRY_PREFIX not in names.ALL_NAMES

    def test_registry_is_reasonably_populated(self):
        # Every subsystem reports; a shrinking registry means call
        # sites drifted away from the single source of truth.
        assert len(names.ALL_NAMES) >= 50
        prefixes = {name.split(".")[0] for name in names.ALL_NAMES}
        assert {
            "sim", "dsss", "ecc", "wire", "dndp", "mndp",
            "revocation", "dos", "neighbors", "retry", "faults",
            "experiment",
        } <= prefixes


class TestLookupApi:
    def test_static_names_are_registered(self):
        assert names.is_registered(names.DSSS_SCANS)
        assert names.is_registered(names.REVOCATION_REVOKED)

    def test_dynamic_helper_products_are_registered(self):
        assert names.is_registered(names.cache_hits("rs_codec"))
        assert names.is_registered(names.cache_misses("waveform"))
        assert names.is_registered(
            names.backend_qualified(
                names.ECC_SYMBOLS_ENCODED, "vectorized"
            )
        )

    def test_typos_are_not_registered(self):
        assert not names.is_registered("dsss.scnas")
        assert not names.is_registered("cache.hits")
        assert not names.is_registered("ecc.symbols_encoded.")

    def test_backend_qualified_rejects_unregistered_base(self):
        with pytest.raises(ValueError):
            names.backend_qualified("ecc.sybmols_encoded", "naive")

    def test_looks_like_metric_name(self):
        assert names.looks_like_metric_name("dsss.scans")
        assert not names.looks_like_metric_name("x")
        assert not names.looks_like_metric_name("faults.")
        assert not names.looks_like_metric_name("Dsss.Scans")

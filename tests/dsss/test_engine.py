"""Unit and equivalence tests for the correlation engines.

The batched backends must be drop-in replacements for the naive
per-position reference: same correlation values (to float tolerance),
same lock decisions, same work accounting — on clean, superposed, and
jammed channels alike.
"""

import numpy as np
import pytest

from repro.dsss.channel import ChipChannel
from repro.dsss.correlator import correlate_many
from repro.dsss.engine import (
    CORRELATION_BACKENDS,
    BatchedCorrelationEngine,
    NaiveCorrelationEngine,
    make_engine,
)
from repro.dsss.spread_code import SpreadCode
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.errors import ConfigurationError, SpreadCodeError


def _make_codes(rng, n=4, length=512):
    return [SpreadCode.random(length, rng, code_id=i) for i in range(n)]


class TestEngineConstruction:
    def test_needs_codes(self):
        with pytest.raises(SpreadCodeError):
            NaiveCorrelationEngine([])

    def test_mixed_lengths(self, rng):
        codes = [SpreadCode.random(8, rng, 0), SpreadCode.random(16, rng, 1)]
        with pytest.raises(SpreadCodeError):
            BatchedCorrelationEngine(codes)

    def test_unknown_backend(self, rng):
        with pytest.raises(ConfigurationError):
            make_engine(_make_codes(rng, length=16), "vectorised")

    def test_backend_names_resolve(self, rng):
        codes = _make_codes(rng, length=64)
        for name in CORRELATION_BACKENDS:
            engine = make_engine(codes, name)
            assert engine.n_codes == 4
            assert engine.chip_length == 64

    def test_naive_block_size_is_one(self, rng):
        # A naive scan that locks early must not compute whole blocks.
        assert NaiveCorrelationEngine(_make_codes(rng, length=16)).block_size == 1

    def test_fft_selection_by_length(self, rng):
        small = BatchedCorrelationEngine(_make_codes(rng, length=32))
        large = BatchedCorrelationEngine(_make_codes(rng, length=512))
        assert not small.uses_fft
        assert large.uses_fft

    def test_invalid_block_size(self, rng):
        with pytest.raises(SpreadCodeError):
            BatchedCorrelationEngine(_make_codes(rng, length=16), block_size=0)


class TestCorrelateBlock:
    @pytest.mark.parametrize("backend", CORRELATION_BACKENDS)
    def test_matches_correlate_many(self, rng, backend):
        codes = _make_codes(rng, n=3, length=64)
        buffer = rng.normal(0.0, 1.0, size=500)
        engine = make_engine(codes, backend)
        block = engine.correlate_block(buffer, 10, 200)
        assert block.shape == (190, 3)
        for i, position in enumerate((10, 57, 199)):
            expected = correlate_many(buffer, codes, position)
            row = block[position - 10]
            np.testing.assert_allclose(row, expected, atol=1e-9)

    def test_matmul_and_fft_agree(self, rng):
        codes = _make_codes(rng, n=2, length=96)
        buffer = rng.normal(0.0, 1.0, size=1000)
        matmul = BatchedCorrelationEngine(codes, fft_min_length=10_000)
        fft = BatchedCorrelationEngine(codes, fft_min_length=1)
        assert not matmul.uses_fft and fft.uses_fft
        np.testing.assert_allclose(
            matmul.correlate_block(buffer, 0, 905),
            fft.correlate_block(buffer, 0, 905),
            atol=1e-9,
        )

    @pytest.mark.parametrize("backend", CORRELATION_BACKENDS)
    def test_empty_range(self, rng, backend):
        engine = make_engine(_make_codes(rng, length=16), backend)
        buffer = rng.normal(0.0, 1.0, size=64)
        assert engine.correlate_block(buffer, 5, 5).shape == (0, 4)

    @pytest.mark.parametrize("backend", CORRELATION_BACKENDS)
    def test_out_of_buffer(self, rng, backend):
        engine = make_engine(_make_codes(rng, length=16), backend)
        buffer = rng.normal(0.0, 1.0, size=64)
        with pytest.raises(SpreadCodeError):
            engine.correlate_block(buffer, 0, 50)
        with pytest.raises(SpreadCodeError):
            engine.correlate_block(buffer, -1, 3)


class TestSynchronizerBackendWiring:
    def test_engine_instance_accepted(self, rng):
        codes = _make_codes(rng, length=64)
        engine = BatchedCorrelationEngine(codes, block_size=7)
        sync = SlidingWindowSynchronizer(
            codes, tau=0.15, message_bits=4, backend=engine
        )
        assert sync.engine is engine

    def test_engine_code_set_must_match(self, rng):
        codes = _make_codes(rng, length=64)
        other = _make_codes(rng, n=2, length=64)
        engine = BatchedCorrelationEngine(other)
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer(
                codes, tau=0.15, message_bits=4, backend=engine
            )


def _equivalent_results(codes, buffer, message_bits, confirm_blocks=3,
                        tau=0.15):
    """Run scan_all under every backend and assert identical sequences."""
    outcomes = {}
    for backend in CORRELATION_BACKENDS:
        sync = SlidingWindowSynchronizer(
            codes,
            tau=tau,
            message_bits=message_bits,
            confirm_blocks=confirm_blocks,
            backend=backend,
        )
        outcomes[backend] = sync.scan_all(buffer)
    reference = outcomes["naive"]
    for backend, results in outcomes.items():
        assert results == reference, (
            f"{backend} diverged from naive: "
            f"{[(r.position, r.code.code_id, r.correlations_computed) for r in results]} "
            f"vs {[(r.position, r.code.code_id, r.correlations_computed) for r in reference]}"
        )
    return reference


class TestBackendEquivalence:
    """The adversarial test matrix: clean / superposed / jammed buffers."""

    def test_clean_channel(self, rng):
        codes = _make_codes(rng)
        bits = rng.integers(0, 2, size=10, dtype=np.int8)
        channel = ChipChannel(noise_std=0.0)
        channel.add_message(bits, codes[1], offset=303)
        buffer = channel.render()
        results = _equivalent_results(codes, buffer, message_bits=10)
        assert [r.position for r in results] == [303]
        assert results[0].bits == bits.tolist()

    def test_superposed_channel(self, rng):
        codes = _make_codes(rng)
        channel = ChipChannel(noise_std=0.3)
        bits = rng.integers(0, 2, size=8, dtype=np.int8)
        channel.add_message(bits, codes[0], offset=0)
        channel.add_message(bits, codes[2], offset=8 * 512 + 191)
        foreign = SpreadCode.random(512, rng)
        channel.add_message(
            rng.integers(0, 2, size=16, dtype=np.int8), foreign, offset=100
        )
        buffer = channel.render(rng=rng)
        results = _equivalent_results(codes, buffer, message_bits=8)
        assert len(results) >= 1

    def test_jammed_channel(self, rng):
        codes = _make_codes(rng)
        channel = ChipChannel(noise_std=0.3)
        bits = rng.integers(0, 2, size=10, dtype=np.int8)
        channel.add_message(bits, codes[3], offset=512)
        # Correct-code jam over the tail plus a wrong-code jam over the
        # head: plenty of spurious threshold crossings to stress the
        # confirm accounting.
        channel.add_jamming(
            codes[3], offset=6 * 512, n_bits=6, rng=rng, amplitude=2.0
        )
        channel.add_jamming(
            codes[1], offset=0, n_bits=10, rng=rng, amplitude=1.5
        )
        buffer = channel.render(rng=rng)
        _equivalent_results(codes, buffer, message_bits=10)

    def test_noise_only_buffer(self, rng):
        codes = _make_codes(rng, n=3, length=64)
        buffer = rng.normal(0.0, 1.0, size=3000)
        results = _equivalent_results(
            codes, buffer, message_bits=4, confirm_blocks=2, tau=0.2
        )
        # Nothing real on the channel; whatever the naive path decides,
        # the batched paths must decide identically (checked above).
        assert all(r.position >= 0 for r in results)

    def test_scan_start_offset_equivalence(self, rng):
        codes = _make_codes(rng, n=2)
        bits = rng.integers(0, 2, size=6, dtype=np.int8)
        channel = ChipChannel(noise_std=0.2)
        channel.add_message(bits, codes[0], offset=40)
        channel.add_message(bits, codes[1], offset=6 * 512 + 1000)
        buffer = channel.render(rng=rng)
        scans = {}
        for backend in CORRELATION_BACKENDS:
            sync = SlidingWindowSynchronizer(
                codes, tau=0.15, message_bits=6, backend=backend
            )
            scans[backend] = sync.scan(buffer, start=2000)
        assert scans["batched"] == scans["naive"]
        assert scans["fft"] == scans["naive"]
        assert scans["naive"] is not None
        assert scans["naive"].code.code_id == 1

"""Unit tests for the chip-level superposition channel."""

import numpy as np
import pytest

from repro.dsss.channel import ChannelTransmission, ChipChannel
from repro.dsss.spread_code import SpreadCode
from repro.dsss.spreader import despread
from repro.errors import SpreadCodeError


class TestChannelTransmission:
    def test_end(self):
        tx = ChannelTransmission(np.ones(10, dtype=np.int8), offset=5)
        assert tx.end == 15

    def test_rejects_negative_offset(self):
        with pytest.raises(SpreadCodeError):
            ChannelTransmission(np.ones(4, dtype=np.int8), offset=-1)

    def test_rejects_non_positive_amplitude(self):
        with pytest.raises(SpreadCodeError):
            ChannelTransmission(np.ones(4, dtype=np.int8), 0, amplitude=0)


class TestChipChannel:
    def test_single_message_roundtrip(self, rng):
        code = SpreadCode.random(256, rng)
        bits = rng.integers(0, 2, size=8, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, code, offset=0)
        decoded = despread(channel.render(), code, tau=0.15)
        assert decoded == bits.tolist()

    def test_superposition_is_additive(self, rng):
        code_a = SpreadCode.random(64, rng)
        code_b = SpreadCode.random(64, rng)
        channel = ChipChannel()
        channel.add_message(np.array([1]), code_a, offset=0)
        channel.add_message(np.array([1]), code_b, offset=0)
        signal = channel.render()
        assert np.array_equal(
            signal, code_a.chips.astype(float) + code_b.chips
        )

    def test_concurrent_different_codes_decode(self, rng):
        """The paper's negligible-interference assumption at N = 512."""
        code_a = SpreadCode.random(512, rng)
        code_b = SpreadCode.random(512, rng)
        bits_a = rng.integers(0, 2, size=10, dtype=np.int8)
        bits_b = rng.integers(0, 2, size=10, dtype=np.int8)
        channel = ChipChannel(noise_std=0.1)
        channel.add_message(bits_a, code_a, offset=0)
        channel.add_message(bits_b, code_b, offset=0)
        signal = channel.render(rng=rng)
        assert despread(signal, code_a, tau=0.15) == bits_a.tolist()
        assert despread(signal, code_b, tau=0.15) == bits_b.tolist()

    def test_same_code_jamming_destroys_bits(self, rng):
        code = SpreadCode.random(512, rng)
        bits = rng.integers(0, 2, size=20, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, code, offset=0)
        channel.add_jamming(code, offset=0, n_bits=20, rng=rng)
        decoded = despread(channel.render(), code, tau=0.15)
        wrong_or_erased = sum(
            1 for got, want in zip(decoded, bits.tolist()) if got != want
        )
        # Random-data jamming flips/erases about half the bits.
        assert wrong_or_erased >= 5

    def test_render_length_extension(self, rng):
        code = SpreadCode.random(16, rng)
        channel = ChipChannel()
        channel.add_message(np.array([1]), code, offset=4)
        signal = channel.render(length=100)
        assert signal.size == 100
        assert np.all(signal[:4] == 0)

    def test_render_too_short_rejected(self, rng):
        code = SpreadCode.random(16, rng)
        channel = ChipChannel()
        channel.add_message(np.array([1]), code, offset=0)
        with pytest.raises(SpreadCodeError):
            channel.render(length=8)

    def test_noise_requires_rng(self):
        channel = ChipChannel(noise_std=0.1)
        channel.add_transmission(
            ChannelTransmission(np.ones(4, dtype=np.int8), 0)
        )
        with pytest.raises(SpreadCodeError):
            channel.render()

    def test_mix_renders_and_resets(self, rng):
        code = SpreadCode.random(64, rng)
        bits = rng.integers(0, 2, size=4, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, code, offset=0)
        signal = channel.mix()
        assert despread(signal, code, tau=0.15) == bits.tolist()
        # The channel is reusable without an explicit clear().
        assert channel.transmissions == []
        assert channel.mix().size == 0

    def test_mix_noise_without_rng_is_typed_error(self, rng):
        # Regression: a noisy channel mixed without an rng used to die
        # with a bare AttributeError (None.normal) deep in the noise
        # draw; it must raise SpreadCodeError with the noise level in
        # the message, before any superposition work.
        channel = ChipChannel(noise_std=0.5)
        channel.add_message(
            np.array([1, 0]), SpreadCode.random(32, rng), offset=0
        )
        with pytest.raises(SpreadCodeError, match="noise_std=0.5"):
            channel.mix()
        with pytest.raises(SpreadCodeError, match="rng is required"):
            channel.render()

    def test_mix_noisy_with_rng(self, rng):
        code = SpreadCode.random(256, rng)
        bits = rng.integers(0, 2, size=5, dtype=np.int8)
        channel = ChipChannel(noise_std=0.2)
        channel.add_message(bits, code, offset=0)
        assert despread(channel.mix(rng=rng), code, 0.15) == bits.tolist()
        assert channel.transmissions == []

    def test_negative_noise_rejected(self):
        with pytest.raises(SpreadCodeError):
            ChipChannel(noise_std=-0.1)

    def test_clear(self, rng):
        channel = ChipChannel()
        channel.add_message(np.array([1]), SpreadCode.random(8, rng), 0)
        channel.clear()
        assert channel.render().size == 0

    def test_jamming_rejects_zero_bits(self, rng):
        channel = ChipChannel()
        with pytest.raises(SpreadCodeError):
            channel.add_jamming(
                SpreadCode.random(8, rng), offset=0, n_bits=0, rng=rng
            )

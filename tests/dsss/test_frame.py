"""Unit tests for protocol frame encoding."""

import numpy as np
import pytest

from repro.dsss.frame import Frame, FrameCodec, MessageType
from repro.errors import ConfigurationError, DecodeError


class TestFrame:
    def test_plain_bits(self):
        frame = Frame(MessageType.HELLO, np.ones(16, dtype=np.int8))
        assert frame.plain_bits == FrameCodec.TYPE_BITS + 16

    def test_equality(self):
        a = Frame(MessageType.HELLO, np.array([1, 0], dtype=np.int8))
        b = Frame(MessageType.HELLO, np.array([1, 0], dtype=np.int8))
        c = Frame(MessageType.CONFIRM, np.array([1, 0], dtype=np.int8))
        assert a == b
        assert a != c

    def test_rejects_non_binary_payload(self):
        with pytest.raises(ConfigurationError):
            Frame(MessageType.HELLO, np.array([2], dtype=np.int8))


class TestFrameCodec:
    def test_roundtrip_all_types(self, rng):
        codec = FrameCodec(mu=1.0)
        for message_type in MessageType:
            payload = rng.integers(0, 2, size=16).astype(np.int8)
            frame = Frame(message_type, payload)
            coded = codec.encode(frame)
            decoded = codec.decode([int(b) for b in coded], payload_bits=16)
            assert decoded == frame

    def test_expansion_factor(self):
        codec = FrameCodec(mu=1.0)
        coded_bits = codec.coded_bits(payload_bits=16)
        plain = FrameCodec.TYPE_BITS + 16
        assert coded_bits >= 2 * plain  # at least (1 + mu) expansion
        assert coded_bits <= 3 * plain  # bounded rounding overhead

    def test_tolerates_erasures(self, rng):
        codec = FrameCodec(mu=1.0)
        frame = Frame(MessageType.CONFIRM, rng.integers(0, 2, 16).astype(np.int8))
        coded = [int(b) for b in codec.encode(frame)]
        coded[0] = None
        coded[1] = None
        assert codec.decode(coded, payload_bits=16) == frame

    def test_fails_beyond_tolerance(self, rng):
        codec = FrameCodec(mu=1.0)
        frame = Frame(MessageType.HELLO, rng.integers(0, 2, 16).astype(np.int8))
        coded = [None] * len(codec.encode(frame))
        with pytest.raises(DecodeError):
            codec.decode(coded, payload_bits=16)

    def test_unknown_message_type(self, rng):
        codec = FrameCodec(mu=1.0)
        # Craft a frame with an invalid type value by re-encoding bits.
        from repro.ecc.codec import ExpansionCodec
        from repro.utils.bitstring import bits_from_int

        plain = np.concatenate(
            [bits_from_int(31, FrameCodec.TYPE_BITS),
             rng.integers(0, 2, 16).astype(np.int8)]
        )
        coded = ExpansionCodec(1.0).encode(plain)
        with pytest.raises(DecodeError):
            codec.decode([int(b) for b in coded], payload_bits=16)

    def test_rejects_narrow_type_field(self):
        with pytest.raises(ConfigurationError):
            FrameCodec(mu=1.0, type_bits=2)

"""Unit tests for correlation primitives."""

import numpy as np
import pytest

from repro.dsss.correlator import correlate, correlate_many, decide_bit
from repro.dsss.spread_code import SpreadCode
from repro.errors import SpreadCodeError


class TestCorrelate:
    def test_matches_definition(self, rng):
        code = SpreadCode.random(64, rng)
        window = rng.normal(size=64)
        expected = float(window @ code.chips) / 64
        assert correlate(window, code) == pytest.approx(expected)


class TestCorrelateMany:
    def test_one_per_code(self, rng):
        codes = [SpreadCode.random(32, rng, i) for i in range(5)]
        buffer = rng.normal(size=100)
        out = correlate_many(buffer, codes, position=10)
        assert out.shape == (5,)
        for i, code in enumerate(codes):
            assert out[i] == pytest.approx(
                correlate(buffer[10:42], code)
            )

    def test_empty_codes(self, rng):
        assert correlate_many(rng.normal(size=10), [], 0).size == 0

    def test_window_out_of_bounds(self, rng):
        codes = [SpreadCode.random(32, rng)]
        with pytest.raises(SpreadCodeError):
            correlate_many(np.zeros(40), codes, position=20)

    def test_negative_position(self, rng):
        codes = [SpreadCode.random(8, rng)]
        with pytest.raises(SpreadCodeError):
            correlate_many(np.zeros(16), codes, position=-1)

    def test_mixed_lengths_rejected(self, rng):
        codes = [SpreadCode.random(8, rng, 0), SpreadCode.random(16, rng, 1)]
        with pytest.raises(SpreadCodeError):
            correlate_many(np.zeros(32), codes, position=0)


class TestDecideBit:
    def test_one(self):
        assert decide_bit(0.2, tau=0.15) == 1

    def test_zero(self):
        assert decide_bit(-0.2, tau=0.15) == 0

    def test_erasure(self):
        assert decide_bit(0.1, tau=0.15) is None
        assert decide_bit(-0.1, tau=0.15) is None

    def test_boundary_inclusive(self):
        assert decide_bit(0.15, tau=0.15) == 1
        assert decide_bit(-0.15, tau=0.15) == 0

    def test_bad_tau(self):
        with pytest.raises(SpreadCodeError):
            decide_bit(0.5, tau=1.5)

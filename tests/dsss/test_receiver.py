"""Unit tests for the buffer/process schedule."""

import pytest

from repro.dsss.receiver import BufferSchedule
from repro.errors import ConfigurationError


class TestConstruction:
    def test_gap_ratio(self):
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0)
        assert schedule.gap_ratio == pytest.approx(10.0)

    def test_rejects_processing_faster_than_buffering(self):
        with pytest.raises(ConfigurationError):
            BufferSchedule(t_buffer=2.0, t_process=1.0)

    def test_rejects_negative_phase(self):
        with pytest.raises(ConfigurationError):
            BufferSchedule(1.0, 10.0, phase=-0.1)

    def test_rejects_non_positive_durations(self):
        with pytest.raises(ConfigurationError):
            BufferSchedule(0.0, 1.0)


class TestWindows:
    def test_window_geometry(self):
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0, phase=0.0)
        win = schedule.window(1)
        assert win.buffer_start == pytest.approx(9.0)
        assert win.buffer_end == pytest.approx(10.0)
        assert win.processing_done == pytest.approx(20.0)
        assert win.duration == pytest.approx(1.0)

    def test_phase_shifts_windows(self):
        schedule = BufferSchedule(1.0, 10.0, phase=3.0)
        win = schedule.window(1)
        assert win.buffer_end == pytest.approx(13.0)

    def test_first_index_valid(self):
        schedule = BufferSchedule(1.0, 10.0, phase=2.0)
        first = schedule.first_index()
        assert schedule.window(first).buffer_start >= 0.0
        with pytest.raises(ConfigurationError):
            schedule.window(first - 1)

    def test_windows_between(self):
        schedule = BufferSchedule(1.0, 10.0, phase=0.0)
        windows = list(schedule.windows_between(0.0, 35.0))
        ends = [w.buffer_end for w in windows]
        assert ends == pytest.approx([10.0, 20.0, 30.0])

    def test_windows_between_rejects_inverted(self):
        schedule = BufferSchedule(1.0, 10.0)
        with pytest.raises(ConfigurationError):
            list(schedule.windows_between(5.0, 4.0))


class TestCoverage:
    def test_required_duration_covers_any_phase(self):
        """The paper's claim behind r = ceil((lambda+1)(m+1)/m)."""
        t_b, t_p = 0.5, 7.5
        for k in range(40):
            phase = k * t_p / 40
            schedule = BufferSchedule(t_b, t_p, phase=phase)
            duration = schedule.required_tx_duration()
            for start in (0.0, 3.3, 12.1):
                win = schedule.first_covered_window(start, duration)
                assert win is not None, f"phase={phase} start={start}"
                assert win.buffer_start >= start
                assert win.buffer_end <= start + duration

    def test_shorter_transmission_can_miss(self):
        """A broadcast shorter than t_p + t_b misses some phases."""
        t_b, t_p = 0.5, 7.5
        missed = 0
        for k in range(40):
            schedule = BufferSchedule(t_b, t_p, phase=k * t_p / 40)
            if schedule.first_covered_window(10.0, t_p / 2) is None:
                missed += 1
        assert missed > 0

    def test_rejects_non_positive_duration(self):
        schedule = BufferSchedule(1.0, 10.0)
        with pytest.raises(ConfigurationError):
            schedule.first_covered_window(0.0, 0.0)

"""Unit tests for the buffer/process schedule."""

import pytest

from repro.dsss.receiver import BufferSchedule
from repro.errors import ConfigurationError


class TestConstruction:
    def test_gap_ratio(self):
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0)
        assert schedule.gap_ratio == pytest.approx(10.0)

    def test_rejects_processing_faster_than_buffering(self):
        with pytest.raises(ConfigurationError):
            BufferSchedule(t_buffer=2.0, t_process=1.0)

    def test_rejects_negative_phase(self):
        with pytest.raises(ConfigurationError):
            BufferSchedule(1.0, 10.0, phase=-0.1)

    def test_rejects_non_positive_durations(self):
        with pytest.raises(ConfigurationError):
            BufferSchedule(0.0, 1.0)


class TestWindows:
    def test_window_geometry(self):
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0, phase=0.0)
        win = schedule.window(1)
        assert win.buffer_start == pytest.approx(9.0)
        assert win.buffer_end == pytest.approx(10.0)
        assert win.processing_done == pytest.approx(20.0)
        assert win.duration == pytest.approx(1.0)

    def test_phase_shifts_windows(self):
        schedule = BufferSchedule(1.0, 10.0, phase=3.0)
        win = schedule.window(1)
        assert win.buffer_end == pytest.approx(13.0)

    def test_first_index_valid(self):
        schedule = BufferSchedule(1.0, 10.0, phase=2.0)
        first = schedule.first_index()
        assert schedule.window(first).buffer_start >= 0.0
        with pytest.raises(ConfigurationError):
            schedule.window(first - 1)

    def test_windows_between(self):
        schedule = BufferSchedule(1.0, 10.0, phase=0.0)
        windows = list(schedule.windows_between(0.0, 35.0))
        ends = [w.buffer_end for w in windows]
        assert ends == pytest.approx([10.0, 20.0, 30.0])

    def test_windows_between_rejects_inverted(self):
        schedule = BufferSchedule(1.0, 10.0)
        with pytest.raises(ConfigurationError):
            list(schedule.windows_between(5.0, 4.0))


class TestEdgePhases:
    """Boundary alignments and large phases of the schedule."""

    def test_tx_exactly_aligned_to_window_boundary(self):
        """A transmission spanning exactly one buffering window — start
        on buffer_start, end on buffer_end — is covered."""
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0, phase=0.0)
        win = schedule.first_covered_window(9.0, 1.0)
        assert win is not None
        assert win.buffer_start == pytest.approx(9.0)
        assert win.buffer_end == pytest.approx(10.0)

    def test_tx_one_hair_short_of_boundary_misses(self):
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0, phase=0.0)
        # Ends at 9.999: window [9, 10] is not fully inside, and the
        # next window starts at 19.
        assert schedule.first_covered_window(9.0, 0.999) is None

    def test_windows_between_includes_touching_boundary(self):
        """start exactly on a window's buffer_end still yields it."""
        schedule = BufferSchedule(1.0, 10.0, phase=0.0)
        windows = list(schedule.windows_between(10.0, 10.0))
        assert [w.buffer_end for w in windows] == pytest.approx([10.0])

    def test_phase_at_least_t_buffer(self):
        """With phase >= t_buffer, window 0 already has a non-negative
        buffering interval [phase - t_b, phase]."""
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0, phase=3.0)
        assert schedule.first_index() == 0
        win = schedule.window(0)
        assert win.buffer_start == pytest.approx(2.0)
        assert win.buffer_end == pytest.approx(3.0)
        assert win.processing_done == pytest.approx(13.0)

    def test_phase_beyond_t_process(self):
        """A phase larger than the period leaves an initial dead zone
        with no buffering windows at all."""
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0, phase=12.0)
        assert schedule.first_index() == 0
        assert list(schedule.windows_between(0.0, 5.0)) == []
        first = schedule.window(0)
        assert first.buffer_start == pytest.approx(11.0)

    def test_phase_equal_to_t_buffer_window_starts_at_zero(self):
        schedule = BufferSchedule(t_buffer=1.0, t_process=10.0, phase=1.0)
        win = schedule.window(schedule.first_index())
        assert win.buffer_start == pytest.approx(0.0)

    def test_coverage_sweep_across_boundary_phases(self):
        """required_tx_duration covers boundary-aligned phases too
        (phase = 0, t_b, t_p, t_p + t_b)."""
        t_b, t_p = 0.5, 7.5
        for phase in (0.0, t_b, t_p, t_p + t_b):
            schedule = BufferSchedule(t_b, t_p, phase=phase)
            win = schedule.first_covered_window(
                t_b, schedule.required_tx_duration()
            )
            assert win is not None, f"phase={phase}"


class TestCoverage:
    def test_required_duration_covers_any_phase(self):
        """The paper's claim behind r = ceil((lambda+1)(m+1)/m)."""
        t_b, t_p = 0.5, 7.5
        for k in range(40):
            phase = k * t_p / 40
            schedule = BufferSchedule(t_b, t_p, phase=phase)
            duration = schedule.required_tx_duration()
            for start in (0.0, 3.3, 12.1):
                win = schedule.first_covered_window(start, duration)
                assert win is not None, f"phase={phase} start={start}"
                assert win.buffer_start >= start
                assert win.buffer_end <= start + duration

    def test_shorter_transmission_can_miss(self):
        """A broadcast shorter than t_p + t_b misses some phases."""
        t_b, t_p = 0.5, 7.5
        missed = 0
        for k in range(40):
            schedule = BufferSchedule(t_b, t_p, phase=k * t_p / 40)
            if schedule.first_covered_window(10.0, t_p / 2) is None:
                missed += 1
        assert missed > 0

    def test_rejects_non_positive_duration(self):
        schedule = BufferSchedule(1.0, 10.0)
        with pytest.raises(ConfigurationError):
            schedule.first_covered_window(0.0, 0.0)

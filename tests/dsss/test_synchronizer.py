"""Unit tests for the sliding-window synchronizer."""

import numpy as np
import pytest

from repro.dsss.channel import ChipChannel
from repro.dsss.engine import CORRELATION_BACKENDS
from repro.dsss.spread_code import SpreadCode
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.errors import EccDecodeError, SpreadCodeError

# Barker-13: aperiodic autocorrelation sidelobes of magnitude 1/13, so
# partially overlapping windows can never cross a mid-range threshold —
# which makes scans over buffers built from it hand-countable.
BARKER13 = [1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1]


def _make_codes(rng, n=4, length=512):
    return [SpreadCode.random(length, rng, code_id=i) for i in range(n)]


class TestScan:
    def test_finds_message_at_offset(self, rng):
        codes = _make_codes(rng)
        bits = rng.integers(0, 2, size=12, dtype=np.int8)
        channel = ChipChannel(noise_std=0.2)
        channel.add_message(bits, codes[2], offset=777)
        buffer = channel.render(rng=rng)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=12)
        result = sync.scan(buffer)
        assert result is not None
        assert result.position == 777
        assert result.code.code_id == 2
        assert result.bits == bits.tolist()

    def test_none_when_no_known_code(self, rng):
        codes = _make_codes(rng, n=3)
        foreign = SpreadCode.random(512, rng)
        channel = ChipChannel()
        channel.add_message(
            rng.integers(0, 2, size=12, dtype=np.int8), foreign, offset=100
        )
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=12)
        assert sync.scan(channel.render(length=100 + 13 * 512)) is None

    def test_partial_message_not_locked(self, rng):
        codes = _make_codes(rng, n=1)
        bits = rng.integers(0, 2, size=12, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=0)
        # Truncate the buffer so the message cannot fully fit.
        buffer = channel.render()[: 11 * 512]
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=12)
        assert sync.scan(buffer) is None

    def test_counts_correlations(self, rng):
        codes = _make_codes(rng, n=3, length=64)
        bits = np.ones(4, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=0)
        sync = SlidingWindowSynchronizer(
            codes, tau=0.15, message_bits=4, confirm_blocks=1
        )
        result = sync.scan(channel.render())
        assert result.correlations_computed == 3  # locked at position 0

    def test_scan_from_start_offset(self, rng):
        codes = _make_codes(rng, n=2)
        bits = rng.integers(0, 2, size=8, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=0)
        channel.add_message(bits, codes[1], offset=10 * 512)
        buffer = channel.render()
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=8)
        second = sync.scan(buffer, start=8 * 512)
        assert second is not None
        assert second.code.code_id == 1


def _reference_scan(codes, tau, message_bits, confirm_blocks, buffer, start=0):
    """Independent reimplementation of the scan, counting by hand.

    Walks the buffer one chip at a time with scalar correlations only —
    no engine, no batching — and charges every (window x code)
    correlation, confirmation blocks included.  The production scan must
    agree with this count exactly.
    """
    buffer = np.asarray(buffer, dtype=np.float64)
    n = codes[0].length
    total = message_bits * n
    computed = 0
    for position in range(start, buffer.size - total + 1):
        computed += len(codes)
        for code in codes:
            if abs(code.correlation(buffer[position : position + n])) < tau:
                continue
            confirmed = True
            for block in range(1, confirm_blocks):
                offset = position + block * n
                computed += 1
                if abs(
                    code.correlation(buffer[offset : offset + n])
                ) < tau:
                    confirmed = False
                    break
            if confirmed:
                return position, code, computed
    return None, None, computed


class TestAccounting:
    """correlations_computed must equal the hand-counted work."""

    @pytest.mark.parametrize("backend", CORRELATION_BACKENDS)
    def test_hand_counted_with_failed_confirm(self, backend):
        """A crafted buffer whose every correlation is known by hand.

        Layout (N = 13, one code, message_bits = 2, confirm_blocks = 2,
        tau = 0.5): ``[code][zeros][code][code]``.

        - position 0: correlation 1 -> hit; confirm block at offset 13
          sees zeros -> fails.  1 scan correlation + 1 confirm
          correlation.
        - positions 1..25: partial overlaps; Barker sidelobes keep every
          |correlation| <= 1/13 < 0.5.  25 scan correlations.
        - position 26: correlation 1 -> hit; confirm at offset 39 sees
          the second copy -> locks.  1 scan + 1 confirm correlation.

        Total: 27 scan + 2 confirm = 29.
        """
        code = SpreadCode(BARKER13, code_id=0)
        chips = code.chips.astype(np.float64)
        buffer = np.concatenate(
            [chips, np.zeros(13), chips, chips]
        )
        sync = SlidingWindowSynchronizer(
            [code], tau=0.5, message_bits=2, confirm_blocks=2,
            backend=backend,
        )
        result = sync.scan(buffer)
        assert result is not None
        assert result.position == 26
        assert result.bits == [1, 1]
        assert result.correlations_computed == 29

    @pytest.mark.parametrize("backend", CORRELATION_BACKENDS)
    def test_clean_lock_counts_confirm_blocks(self, rng, backend):
        """Lock at position 0: m scan correlations + (confirm_blocks - 1)
        confirmation correlations."""
        codes = _make_codes(rng, n=3, length=64)
        bits = np.ones(5, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[1], offset=0)
        sync = SlidingWindowSynchronizer(
            codes, tau=0.15, message_bits=5, confirm_blocks=3,
            backend=backend,
        )
        result = sync.scan(channel.render())
        assert result is not None
        assert result.position == 0
        assert result.correlations_computed == 3 + 2

    @pytest.mark.parametrize("backend", CORRELATION_BACKENDS)
    def test_matches_reference_on_noisy_buffer(self, rng, backend):
        """On a buffer full of spurious crossings the production count
        equals the independent chip-by-chip reference count."""
        codes = _make_codes(rng, n=3, length=32)
        channel = ChipChannel(noise_std=0.6)
        channel.add_message(
            rng.integers(0, 2, size=6, dtype=np.int8), codes[2],
            offset=517,
        )
        foreign = SpreadCode.random(32, rng)
        channel.add_message(
            rng.integers(0, 2, size=40, dtype=np.int8), foreign, offset=0
        )
        buffer = channel.render(rng=rng)
        tau, message_bits, confirm_blocks = 0.3, 6, 2
        position, code, computed = _reference_scan(
            codes, tau, message_bits, confirm_blocks, buffer
        )
        sync = SlidingWindowSynchronizer(
            codes, tau=tau, message_bits=message_bits,
            confirm_blocks=confirm_blocks, backend=backend,
        )
        result = sync.scan(buffer)
        if position is None:
            assert result is None
        else:
            assert result is not None
            assert result.position == position
            assert result.code == code
            assert result.correlations_computed == computed


class TestScanValidatedErrors:
    def _locked_buffer(self, rng, codes):
        channel = ChipChannel()
        channel.add_message(
            np.ones(4, dtype=np.int8), codes[0], offset=0
        )
        return channel.render()

    def test_decode_errors_absorbed(self, rng):
        codes = _make_codes(rng, n=1, length=64)
        buffer = self._locked_buffer(rng, codes)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)

        def validator(result):
            raise EccDecodeError("bit salad")

        assert sync.scan_validated(buffer, validator) is None

    def test_programming_errors_propagate(self, rng):
        """A bug in the validator must not masquerade as a false lock."""
        codes = _make_codes(rng, n=1, length=64)
        buffer = self._locked_buffer(rng, codes)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)

        def validator(result):
            raise TypeError("validator bug")

        with pytest.raises(TypeError):
            sync.scan_validated(buffer, validator)


class TestScanAll:
    def test_finds_multiple_messages(self, rng):
        codes = _make_codes(rng, n=3)
        channel = ChipChannel(noise_std=0.1)
        bits = rng.integers(0, 2, size=6, dtype=np.int8)
        channel.add_message(bits, codes[0], offset=0)
        channel.add_message(bits, codes[1], offset=6 * 512 + 97)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=6)
        results = sync.scan_all(channel.render(rng=rng))
        assert [r.code.code_id for r in results] == [0, 1]

    def test_empty_buffer(self, rng):
        codes = _make_codes(rng, n=1, length=64)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)
        assert sync.scan_all(np.zeros(10)) == []


class TestValidation:
    def test_needs_codes(self):
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer([], tau=0.15, message_bits=4)

    def test_mixed_lengths(self, rng):
        codes = [SpreadCode.random(8, rng, 0), SpreadCode.random(16, rng, 1)]
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)

    def test_bad_confirm_blocks(self, rng):
        codes = [SpreadCode.random(8, rng)]
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer(
                codes, tau=0.15, message_bits=4, confirm_blocks=5
            )

    @pytest.mark.parametrize("tau", [0.0, -0.1, 1.0 + 1e-9])
    def test_bad_tau(self, rng, tau):
        codes = _make_codes(rng, n=1, length=64)
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer(codes, tau=tau, message_bits=4)

    def test_tau_one_boundary_locks_clean_message(self, rng):
        # Regression: tau = 1.0 used to be rejected even though the hit
        # mask uses >= tau and a clean block correlates to exactly 1.0.
        # The boundary must be accepted AND still lock a clean message.
        codes = _make_codes(rng, n=1, length=64)
        bits = rng.integers(0, 2, size=4, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=7)
        sync = SlidingWindowSynchronizer(codes, tau=1.0, message_bits=4)
        result = sync.scan(channel.render())
        assert result is not None
        assert result.position == 7
        assert result.bits == bits.tolist()

    def test_correlations_per_buffer(self, rng):
        codes = _make_codes(rng, n=5, length=64)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)
        # positions = chips - 4*64 + 1
        assert sync.correlations_per_buffer(1000) == (1000 - 256 + 1) * 5

    def test_correlations_per_buffer_too_small(self, rng):
        codes = _make_codes(rng, n=2, length=64)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)
        assert sync.correlations_per_buffer(10) == 0


class TestFalseLockSuppression:
    def test_confirm_blocks_suppress_false_locks(self, rng):
        """Multi-block confirmation monotonically removes spurious locks.

        A noisy buffer carrying only unrelated traffic produces several
        single-block threshold crossings; each extra confirmation block
        strikes more of them, and a handful of blocks removes all.
        """
        codes = _make_codes(rng, n=8)
        foreign = SpreadCode.random(512, rng)
        channel = ChipChannel(noise_std=0.3)
        channel.add_message(
            rng.integers(0, 2, size=40, dtype=np.int8), foreign, offset=0
        )
        buffer = channel.render(rng=rng)
        locks = []
        for confirm_blocks in (1, 3, 5):
            sync = SlidingWindowSynchronizer(
                codes,
                tau=0.15,
                message_bits=10,
                confirm_blocks=confirm_blocks,
            )
            locks.append(len(sync.scan_all(buffer)))
        assert locks[0] > 0, "single-block locking should be fooled"
        assert locks[0] >= locks[1] >= locks[2]
        assert locks[2] == 0, "five confirm blocks should reject all"


class TestMetrics:
    def test_lock_reports_counters(self, rng):
        from repro.obs import MetricsRegistry, installed

        codes = _make_codes(rng, n=3, length=64)
        bits = np.ones(4, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=5)
        buffer = channel.render()
        sync = SlidingWindowSynchronizer(codes, tau=0.2, message_bits=4)
        with installed(MetricsRegistry()) as registry:
            result = sync.scan(buffer)
        snapshot = registry.snapshot()
        assert result is not None
        assert snapshot.counter("dsss.scans") == 1
        assert snapshot.counter("dsss.locks") == 1
        # The registry total is the same accounting the SyncResult
        # carries — now also visible for scans that never lock.
        assert (
            snapshot.counter("dsss.correlations_computed")
            == result.correlations_computed
        )

    def test_failed_scan_still_reports_work(self, rng):
        from repro.obs import MetricsRegistry, installed

        codes = _make_codes(rng, n=3, length=64)
        sync = SlidingWindowSynchronizer(codes, tau=0.2, message_bits=4)
        buffer = rng.normal(0.0, 0.1, size=1024)
        with installed(MetricsRegistry()) as registry:
            result = sync.scan(buffer)
        snapshot = registry.snapshot()
        assert result is None
        assert snapshot.counter("dsss.locks") == 0
        assert snapshot.counter("dsss.correlations_computed") > 0

"""Unit tests for the sliding-window synchronizer."""

import numpy as np
import pytest

from repro.dsss.channel import ChipChannel
from repro.dsss.spread_code import SpreadCode
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.errors import SpreadCodeError


def _make_codes(rng, n=4, length=512):
    return [SpreadCode.random(length, rng, code_id=i) for i in range(n)]


class TestScan:
    def test_finds_message_at_offset(self, rng):
        codes = _make_codes(rng)
        bits = rng.integers(0, 2, size=12, dtype=np.int8)
        channel = ChipChannel(noise_std=0.2)
        channel.add_message(bits, codes[2], offset=777)
        buffer = channel.render(rng=rng)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=12)
        result = sync.scan(buffer)
        assert result is not None
        assert result.position == 777
        assert result.code.code_id == 2
        assert result.bits == bits.tolist()

    def test_none_when_no_known_code(self, rng):
        codes = _make_codes(rng, n=3)
        foreign = SpreadCode.random(512, rng)
        channel = ChipChannel()
        channel.add_message(
            rng.integers(0, 2, size=12, dtype=np.int8), foreign, offset=100
        )
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=12)
        assert sync.scan(channel.render(length=100 + 13 * 512)) is None

    def test_partial_message_not_locked(self, rng):
        codes = _make_codes(rng, n=1)
        bits = rng.integers(0, 2, size=12, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=0)
        # Truncate the buffer so the message cannot fully fit.
        buffer = channel.render()[: 11 * 512]
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=12)
        assert sync.scan(buffer) is None

    def test_counts_correlations(self, rng):
        codes = _make_codes(rng, n=3, length=64)
        bits = np.ones(4, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=0)
        sync = SlidingWindowSynchronizer(
            codes, tau=0.15, message_bits=4, confirm_blocks=1
        )
        result = sync.scan(channel.render())
        assert result.correlations_computed == 3  # locked at position 0

    def test_scan_from_start_offset(self, rng):
        codes = _make_codes(rng, n=2)
        bits = rng.integers(0, 2, size=8, dtype=np.int8)
        channel = ChipChannel()
        channel.add_message(bits, codes[0], offset=0)
        channel.add_message(bits, codes[1], offset=10 * 512)
        buffer = channel.render()
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=8)
        second = sync.scan(buffer, start=8 * 512)
        assert second is not None
        assert second.code.code_id == 1


class TestScanAll:
    def test_finds_multiple_messages(self, rng):
        codes = _make_codes(rng, n=3)
        channel = ChipChannel(noise_std=0.1)
        bits = rng.integers(0, 2, size=6, dtype=np.int8)
        channel.add_message(bits, codes[0], offset=0)
        channel.add_message(bits, codes[1], offset=6 * 512 + 97)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=6)
        results = sync.scan_all(channel.render(rng=rng))
        assert [r.code.code_id for r in results] == [0, 1]

    def test_empty_buffer(self, rng):
        codes = _make_codes(rng, n=1, length=64)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)
        assert sync.scan_all(np.zeros(10)) == []


class TestValidation:
    def test_needs_codes(self):
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer([], tau=0.15, message_bits=4)

    def test_mixed_lengths(self, rng):
        codes = [SpreadCode.random(8, rng, 0), SpreadCode.random(16, rng, 1)]
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)

    def test_bad_confirm_blocks(self, rng):
        codes = [SpreadCode.random(8, rng)]
        with pytest.raises(SpreadCodeError):
            SlidingWindowSynchronizer(
                codes, tau=0.15, message_bits=4, confirm_blocks=5
            )

    def test_correlations_per_buffer(self, rng):
        codes = _make_codes(rng, n=5, length=64)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)
        # positions = chips - 4*64 + 1
        assert sync.correlations_per_buffer(1000) == (1000 - 256 + 1) * 5

    def test_correlations_per_buffer_too_small(self, rng):
        codes = _make_codes(rng, n=2, length=64)
        sync = SlidingWindowSynchronizer(codes, tau=0.15, message_bits=4)
        assert sync.correlations_per_buffer(10) == 0


class TestFalseLockSuppression:
    def test_confirm_blocks_suppress_false_locks(self, rng):
        """Multi-block confirmation monotonically removes spurious locks.

        A noisy buffer carrying only unrelated traffic produces several
        single-block threshold crossings; each extra confirmation block
        strikes more of them, and a handful of blocks removes all.
        """
        codes = _make_codes(rng, n=8)
        foreign = SpreadCode.random(512, rng)
        channel = ChipChannel(noise_std=0.3)
        channel.add_message(
            rng.integers(0, 2, size=40, dtype=np.int8), foreign, offset=0
        )
        buffer = channel.render(rng=rng)
        locks = []
        for confirm_blocks in (1, 3, 5):
            sync = SlidingWindowSynchronizer(
                codes,
                tau=0.15,
                message_bits=10,
                confirm_blocks=confirm_blocks,
            )
            locks.append(len(sync.scan_all(buffer)))
        assert locks[0] > 0, "single-block locking should be fooled"
        assert locks[0] >= locks[1] >= locks[2]
        assert locks[2] == 0, "five confirm blocks should reject all"

"""Unit tests for spreading and de-spreading."""

import numpy as np
import pytest

from repro.dsss.spread_code import SpreadCode
from repro.dsss.spreader import despread, spread
from repro.errors import SpreadCodeError


class TestSpread:
    def test_paper_example(self):
        # Section III: message "10" with code "+1-1-1+1".
        code = SpreadCode([1, -1, -1, 1])
        chips = spread(np.array([1, 0]), code)
        assert chips.tolist() == [1, -1, -1, 1, -1, 1, 1, -1]

    def test_length(self, rng):
        code = SpreadCode.random(512, rng)
        assert spread(np.zeros(3, dtype=np.int8), code).size == 3 * 512

    def test_empty_message(self, rng):
        code = SpreadCode.random(8, rng)
        assert spread(np.zeros(0, dtype=np.int8), code).size == 0


class TestDespread:
    def test_roundtrip_clean(self, rng):
        code = SpreadCode.random(512, rng)
        bits = rng.integers(0, 2, size=20, dtype=np.int8)
        decoded = despread(spread(bits, code), code, tau=0.15)
        assert decoded == bits.tolist()

    def test_roundtrip_with_noise(self, rng):
        code = SpreadCode.random(512, rng)
        bits = rng.integers(0, 2, size=20, dtype=np.int8)
        signal = spread(bits, code).astype(float)
        signal += rng.normal(0, 0.5, size=signal.size)
        decoded = despread(signal, code, tau=0.15)
        assert decoded == bits.tolist()

    def test_erasure_on_cancellation(self, rng):
        code = SpreadCode.random(512, rng)
        signal = spread(np.array([1]), code).astype(float)
        # Perfectly cancel the first block: correlation 0 -> erasure.
        signal -= code.chips
        assert despread(signal, code, tau=0.15) == [None]

    def test_wrong_code_mostly_erasures(self, rng):
        code = SpreadCode.random(512, rng)
        other = SpreadCode.random(512, rng)
        bits = rng.integers(0, 2, size=50, dtype=np.int8)
        decoded = despread(spread(bits, code).astype(float), other, tau=0.15)
        erasures = sum(1 for d in decoded if d is None)
        assert erasures >= 45  # wrong code decodes almost nothing

    def test_rejects_unaligned_chips(self, rng):
        code = SpreadCode.random(16, rng)
        with pytest.raises(SpreadCodeError):
            despread(np.zeros(17), code, tau=0.15)

    @pytest.mark.parametrize("tau", [0.0, 1.0 + 1e-9, -0.2])
    def test_rejects_bad_tau(self, rng, tau):
        code = SpreadCode.random(16, rng)
        with pytest.raises(SpreadCodeError):
            despread(np.zeros(16), code, tau=tau)

    def test_tau_one_boundary_accepted(self, rng):
        # The decision rule is >= tau and a clean block correlates to
        # exactly +/-1.0, so tau = 1.0 is the legitimate "perfect
        # blocks only" operating point — it must not be rejected.
        code = SpreadCode.random(64, rng)
        bits = rng.integers(0, 2, size=6, dtype=np.int8)
        assert despread(spread(bits, code), code, tau=1.0) == bits.tolist()
        # Any corruption falls below 1.0 and becomes an erasure.
        signal = spread(bits, code).astype(float)
        signal[0] = -signal[0]
        assert despread(signal, code, tau=1.0)[0] is None

"""Regression tests for the vectorized PHY hot paths.

``despread`` was rewritten from a per-block Python loop to one
thresholding pass, and :class:`ChipChannel` now converts chips to
float64 once at ``add_transmission`` time and memoizes spread waveforms
in the shared artifact cache.  These tests pin both changes to the old
behavior.
"""

from typing import List, Optional

import numpy as np

from repro.dsss.channel import ChannelTransmission, ChipChannel
from repro.dsss.spread_code import SpreadCode
from repro.dsss.spreader import despread, spread
from repro.utils.artifact_cache import shared_cache
from repro.utils.rng import derive_rng


def _despread_reference(
    chips: np.ndarray, code: SpreadCode, tau: float
) -> List[Optional[int]]:
    """The original per-block loop."""
    blocks = np.asarray(chips, dtype=np.float64).reshape(-1, code.length)
    bits: List[Optional[int]] = []
    for block in blocks:
        correlation = float(block @ code.chips) / code.length
        if correlation >= tau:
            bits.append(1)
        elif correlation <= -tau:
            bits.append(0)
        else:
            bits.append(None)
    return bits


class TestDespreadEquivalence:
    def test_matches_reference_on_noisy_blocks(self):
        rng = derive_rng(77, "despread-equiv")
        for trial in range(25):
            n = int(rng.integers(4, 65)) * 2
            code = SpreadCode.random(n, rng)
            n_bits = int(rng.integers(1, 40))
            bits = rng.integers(0, 2, size=n_bits, dtype=np.int8)
            signal = spread(bits, code).astype(np.float64)
            signal += rng.normal(0.0, 1.2, size=signal.size)
            tau = float(rng.uniform(0.05, 0.9))
            got = despread(signal, code, tau)
            want = _despread_reference(signal, code, tau)
            assert got == want
            # The contract: true Python ints and None, nothing numpy.
            assert all(
                b is None or type(b) is int for b in got
            )

    def test_all_erasures_and_all_decisions(self):
        rng = derive_rng(78, "despread-edges")
        code = SpreadCode.random(32, rng)
        clean = spread(np.array([1, 0, 1, 1]), code)
        assert despread(clean, code, 0.5) == [1, 0, 1, 1]
        assert despread(
            np.zeros(4 * 32), code, 0.5
        ) == [None, None, None, None]


class TestChannelRenderRegression:
    def test_repeated_render_identical_and_float_once(self):
        rng = derive_rng(79, "channel-regress")
        code = SpreadCode.random(64, rng)
        channel = ChipChannel(noise_std=0.0)
        bits = np.array([1, 0, 1], dtype=np.int8)
        channel.add_message(bits, code, offset=5)
        channel.add_transmission(
            ChannelTransmission(
                np.ones(16, dtype=np.int8), offset=0, amplitude=0.5
            )
        )
        first = channel.render()
        second = channel.render()
        assert np.array_equal(first, second)
        # Every stored transmission was converted exactly once.
        for transmission in channel.transmissions:
            assert transmission.chips.dtype == np.float64

    def test_render_matches_manual_superposition(self):
        rng = derive_rng(80, "channel-manual")
        code = SpreadCode.random(32, rng)
        bits = np.array([1, 1, 0], dtype=np.int8)
        channel = ChipChannel(noise_std=0.0)
        channel.add_message(bits, code, offset=7, amplitude=2.0)
        signal = channel.render()
        want = np.zeros(7 + 3 * 32)
        want[7:] = 2.0 * spread(bits, code)
        assert np.array_equal(signal, want)

    def test_waveform_cache_hit_on_repeat(self):
        cache = shared_cache()
        rng = derive_rng(81, "channel-cache")
        code = SpreadCode.random(64, rng)
        bits = np.array([1, 0, 0, 1], dtype=np.int8)
        channel = ChipChannel(noise_std=0.0)
        channel.add_message(bits, code, offset=0)
        hits_before = cache.hits
        channel.add_message(bits, code, offset=640)
        assert cache.hits == hits_before + 1
        # Both transmissions share the read-only cached waveform.
        a, b = channel.transmissions
        assert a.chips is b.chips
        assert not a.chips.flags.writeable

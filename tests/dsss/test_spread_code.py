"""Unit tests for spread codes and pools."""

import numpy as np
import pytest

from repro.dsss.spread_code import CodePool, SpreadCode
from repro.errors import SpreadCodeError


class TestSpreadCode:
    def test_random_length_and_values(self, rng):
        code = SpreadCode.random(512, rng)
        assert code.length == 512
        assert set(np.unique(code.chips)) <= {-1, 1}

    def test_chips_read_only(self, rng):
        code = SpreadCode.random(16, rng)
        with pytest.raises(ValueError):
            code.chips[0] = -code.chips[0]

    def test_does_not_freeze_caller_array(self):
        """Regression: constructing a code from an int8 array must not
        make the caller's array read-only as a side effect."""
        chips = np.array([1, -1, 1, -1], dtype=np.int8)
        code = SpreadCode(chips)
        chips[0] = -1  # caller's buffer stays writable
        assert chips[0] == -1
        assert code.chips[0] == 1  # and the code kept its own copy

    def test_equality_by_content(self):
        a = SpreadCode([1, -1, 1, -1], code_id=1)
        b = SpreadCode([1, -1, 1, -1], code_id=2)
        assert a == b  # identity is content, not label
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert SpreadCode([1, -1]) != SpreadCode([-1, 1])

    def test_from_bits(self):
        code = SpreadCode.from_bits([1, 0, 1])
        assert code.chips.tolist() == [1, -1, 1]

    def test_rejects_invalid_chips(self):
        with pytest.raises(SpreadCodeError):
            SpreadCode([1, 0, -1])

    def test_rejects_empty(self):
        with pytest.raises(SpreadCodeError):
            SpreadCode([])

    def test_rejects_zero_length_random(self, rng):
        with pytest.raises(SpreadCodeError):
            SpreadCode.random(0, rng)

    def test_self_correlation_is_one(self, rng):
        code = SpreadCode.random(256, rng)
        assert code.correlation(code.chips) == pytest.approx(1.0)

    def test_negated_correlation_is_minus_one(self, rng):
        code = SpreadCode.random(256, rng)
        assert code.correlation(-code.chips.astype(float)) == pytest.approx(
            -1.0
        )

    def test_cross_correlation_small(self, rng):
        a = SpreadCode.random(512, rng)
        b = SpreadCode.random(512, rng)
        assert abs(a.correlation(b.chips)) < 0.15

    def test_correlation_wrong_window_size(self, rng):
        code = SpreadCode.random(64, rng)
        with pytest.raises(SpreadCodeError):
            code.correlation(np.ones(32))


class TestCodePool:
    def test_generate(self):
        pool = CodePool.generate(10, 64, seed=1)
        assert pool.size == 10
        assert pool.code_length == 64
        assert len({code for code in pool}) == 10

    def test_deterministic(self):
        a = CodePool.generate(5, 32, seed=9)
        b = CodePool.generate(5, 32, seed=9)
        assert all(x == y for x, y in zip(a, b))

    def test_code_ids_are_slots(self):
        pool = CodePool.generate(4, 32, seed=2)
        assert [pool.code(i).code_id for i in range(4)] == [0, 1, 2, 3]

    def test_subset(self):
        pool = CodePool.generate(6, 32, seed=3)
        subset = pool.subset([5, 0])
        assert [c.code_id for c in subset] == [5, 0]

    def test_index_of(self):
        pool = CodePool.generate(4, 32, seed=4)
        assert pool.index_of(pool.code(2)) == 2
        other = SpreadCode.random(32, np.random.default_rng(0))
        assert pool.index_of(other) is None

    def test_index_of_matches_linear_scan(self, rng):
        """The dict-backed lookup agrees with the old linear scan for
        pool codes, content-equal session codes, and foreign codes."""

        def linear_index_of(pool, code):
            for i, candidate in enumerate(pool):
                if candidate == code:
                    return i
            return None

        pool = CodePool.generate(12, 64, seed=6)
        for i in range(pool.size):
            assert pool.index_of(pool.code(i)) == linear_index_of(
                pool, pool.code(i)
            ) == i
        # A session code labelled differently but sharing chip content
        # with a pool slot still resolves to that slot (content equality).
        session_alias = SpreadCode(
            pool.code(7).chips, code_id="session:alias"
        )
        assert pool.index_of(session_alias) == linear_index_of(
            pool, session_alias
        ) == 7
        # A genuinely fresh session code resolves nowhere, both ways.
        from repro.crypto.session import derive_session_code

        session = derive_session_code(b"K" * 32, 1, 2, 64)
        assert pool.index_of(session) is None
        assert linear_index_of(pool, session) is None

    def test_out_of_range_code(self):
        pool = CodePool.generate(3, 32, seed=5)
        with pytest.raises(SpreadCodeError):
            pool.code(3)

    def test_rejects_mixed_lengths(self, rng):
        with pytest.raises(SpreadCodeError):
            CodePool(
                [SpreadCode.random(8, rng, 0), SpreadCode.random(16, rng, 1)]
            )

    def test_rejects_duplicate_ids(self, rng):
        with pytest.raises(SpreadCodeError):
            CodePool(
                [SpreadCode.random(8, rng, 0), SpreadCode.random(8, rng, 0)]
            )

    def test_rejects_empty_pool(self):
        with pytest.raises(SpreadCodeError):
            CodePool([])

"""Unit tests for the pair-level PHY backends.

The chip vs chipless *equivalence* suite lives in
``tests/experiments/test_phy_equivalence.py``; this file covers the
chipless model's own guarantees: validation, the jam geometry, the
closed-form probabilities, and the Monte Carlo agreement between
:class:`ChiplessPairPHY` draws and :class:`ChiplessModel` numbers.
"""

import math

import numpy as np
import pytest

from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.core.config import JRSNDConfig
from repro.dsss.phy import (
    PHY_BACKENDS,
    ChiplessModel,
    ChiplessPairPHY,
    make_pair_phy,
    message_success_probability,
)
from repro.errors import ConfigurationError


def _config(**overrides):
    base = dict(
        n_nodes=40,
        codes_per_node=10,
        share_count=5,
        n_compromised=4,
        field_width=800.0,
        field_height=800.0,
    )
    base.update(overrides)
    return JRSNDConfig(**base)


def _jamming(strategy=JammerStrategy.REACTIVE, codes=range(20)):
    return JammingModel(strategy, frozenset(codes), z=8, mu=1.0)


def _chipless(config, jamming):
    return make_pair_phy("chipless", config, jamming)


class TestFactory:
    def test_backends_tuple(self):
        assert PHY_BACKENDS == ("message", "chip", "chipless")

    def test_message_backend_returns_none(self):
        assert make_pair_phy("message", _config(), _jamming()) is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            make_pair_phy("waveform", _config(), _jamming())

    def test_chip_backend_needs_pool(self):
        with pytest.raises(ConfigurationError):
            make_pair_phy("chip", _config(), _jamming())

    def test_chipless_is_chipless(self):
        phy = _chipless(_config(), _jamming())
        assert isinstance(phy, ChiplessPairPHY)
        assert phy.backend == "chipless"


class TestChiplessOutcomes:
    def test_clean_code_always_delivered_noiseless(self):
        phy = _chipless(_config(), _jamming())
        rng = np.random.default_rng(0)
        # Code 4999 is outside the compromised set: no jam, no noise,
        # every message and every sub-session goes through.
        assert all(
            phy.subsession_survives(4999, rng) for _ in range(50)
        )

    def test_session_codes_never_jammed(self):
        phy = _chipless(_config(), _jamming(JammerStrategy.REACTIVE))
        rng = np.random.default_rng(1)
        assert all(
            phy.message_received("auth", "session", rng)
            for _ in range(50)
        )

    def test_reactive_jam_kills_compromised_subsessions(self):
        phy = _chipless(_config(), _jamming(JammerStrategy.REACTIVE))
        rng = np.random.default_rng(2)
        survived = sum(
            phy.subsession_survives(3, rng) for _ in range(200)
        )
        # Closed form says ~1.7e-11; observing even one survival in 200
        # draws would be a model bug.
        assert survived == 0

    def test_intelligent_spares_hellos(self):
        phy = _chipless(_config(), _jamming(JammerStrategy.INTELLIGENT))
        rng = np.random.default_rng(3)
        assert all(
            phy.hello_received(3, rng) for _ in range(50)
        )
        assert not any(
            phy.burst_received(3, rng) for _ in range(50)
        )

    def test_amplitude_one_erases_instead_of_flipping(self):
        # At a = 1 a disagreeing jam bit cancels the correlation to 0:
        # erasures but never flips, so a fully-jammed 42/21 message
        # fails only via the budget f <= n - k (and acquisition).
        config = _config(phy_jam_amplitude=1.0)
        jammed = message_success_probability(
            42, 21, config.tau, 0.0, 1.0, 0, 42
        )
        flip_jammed = message_success_probability(
            42, 21, config.tau, 0.0, 2.0, 0, 42
        )
        # Erasures cost 1 against the budget, flips cost 2: the a = 1
        # jam is strictly easier to survive.
        assert jammed > flip_jammed

    def test_noise_draw_order_is_stable(self):
        config = _config(phy_noise_std=2.0)
        phy = _chipless(config, _jamming())
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        outcomes_a = [phy.message_received("hello", 3, a) for _ in range(30)]
        outcomes_b = [phy.message_received("hello", 3, b) for _ in range(30)]
        assert outcomes_a == outcomes_b


class TestClosedForm:
    def test_clean_noiseless_message_is_certain(self):
        assert message_success_probability(
            42, 21, 0.15, 0.0, 2.0, 42, 0
        ) == pytest.approx(1.0)

    def test_full_flip_jam_binomial(self):
        # a = 2, sigma = 0: every jammed bit flips with prob 1/2; the
        # message survives iff 2 * Binom(n, 1/2) <= n - k.
        n, k = 10, 5
        expected = sum(
            math.comb(n, e) * 0.5**n
            for e in range(n + 1)
            if 2 * e <= n - k
        )
        assert message_success_probability(
            n, k, 0.15, 0.0, 2.0, 0, n
        ) == pytest.approx(expected)

    def test_probability_bounds(self):
        for jam_len in (0, 10, 42):
            for sigma in (0.0, 0.02, 0.2):
                p = message_success_probability(
                    42, 21, 0.15, sigma, 2.0, 42 - jam_len, jam_len
                )
                assert 0.0 <= p <= 1.0

    def test_noise_monotonically_hurts_clean_messages(self):
        probs = [
            message_success_probability(42, 21, 0.15, sigma, 2.0, 42, 0)
            for sigma in (0.0, 0.1, 0.3, 0.5)
        ]
        assert probs == sorted(probs, reverse=True)
        assert probs[0] == pytest.approx(1.0)

    def test_model_matches_monte_carlo(self):
        # The ChiplessModel numbers must match empirical ChiplessPairPHY
        # frequencies — the closed form IS the sampled model integrated.
        config = _config(phy_noise_std=1.5)
        jamming = _jamming(JammerStrategy.RANDOM)
        model = ChiplessModel(config, jamming)
        phy = _chipless(config, jamming)
        rng = np.random.default_rng(11)
        trials = 4000
        comp = sum(
            phy.subsession_survives(3, rng) for _ in range(trials)
        ) / trials
        safe = sum(
            phy.subsession_survives(4999, rng) for _ in range(trials)
        ) / trials
        for observed, expected in (
            (comp, model.p_compromised_subsession),
            (safe, model.p_safe_subsession),
        ):
            sigma = math.sqrt(
                max(expected * (1 - expected), 1e-9) / trials
            )
            assert abs(observed - expected) < max(5 * sigma, 0.01)

    def test_pair_success_vectorised(self):
        model = ChiplessModel(_config(), _jamming())
        p = model.pair_success_probability(
            np.array([0, 1, 3]), np.array([0, 0, 2])
        )
        assert p.shape == (3,)
        assert p[0] == pytest.approx(0.0)
        assert p[1] == pytest.approx(1.0)  # safe code, sigma = 0
        assert np.all((0.0 <= p) & (p <= 1.0))


class TestValidation:
    def test_bad_tau(self):
        with pytest.raises(ConfigurationError):
            ChiplessPairPHY(
                _jamming(), code_length=512, tau=1.5,
                hello_shape=(42, 21), auth_shape=(160, 80),
            )

    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            ChiplessPairPHY(
                _jamming(), code_length=512, tau=0.15,
                hello_shape=(21, 42), auth_shape=(160, 80),
            )

    def test_negative_noise(self):
        with pytest.raises(ConfigurationError):
            ChiplessPairPHY(
                _jamming(), code_length=512, tau=0.15,
                hello_shape=(42, 21), auth_shape=(160, 80),
                noise_std=-0.1,
            )

    def test_config_rejects_unknown_phy_backend(self):
        with pytest.raises(ConfigurationError):
            _config(phy_backend="analog")

    def test_config_accepts_all_backends(self):
        for backend in PHY_BACKENDS:
            assert _config(phy_backend=backend).phy_backend == backend

"""Unit tests for BPSK modulation and matched filtering."""

import numpy as np
import pytest

from repro.dsss.modulation import BPSKModulator
from repro.dsss.spread_code import SpreadCode
from repro.dsss.spreader import despread, spread
from repro.errors import ConfigurationError
from repro.utils.bitstring import nrz_from_bits


class TestRoundtrip:
    def test_clean_chips_recovered_exactly(self, rng):
        modulator = BPSKModulator()
        chips = nrz_from_bits(rng.integers(0, 2, size=64, dtype=np.int8))
        soft = modulator.demodulate(modulator.modulate(chips))
        assert np.allclose(soft, chips)

    def test_waveform_length(self):
        modulator = BPSKModulator(samples_per_chip=8)
        assert modulator.modulate(np.ones(10)).size == 80

    def test_noisy_chain_preserves_sign(self, rng):
        modulator = BPSKModulator()
        chips = nrz_from_bits(rng.integers(0, 2, size=256, dtype=np.int8))
        soft = modulator.transmit_chain(chips, snr_db=6.0, rng=rng)
        assert (np.sign(soft) == chips).mean() > 0.95

    def test_full_dsss_over_bpsk(self, rng):
        """Bits -> spread -> BPSK -> AWGN -> matched filter -> despread.

        The processing gain of the 512-chip code carries the message
        through even at strongly negative chip SNR — the whole point of
        spread spectrum.
        """
        code = SpreadCode.random(512, rng)
        bits = rng.integers(0, 2, size=10, dtype=np.int8)
        chips = spread(bits, code)
        modulator = BPSKModulator()
        soft = modulator.transmit_chain(chips, snr_db=-10.0, rng=rng)
        assert despread(soft, code, tau=0.15) == bits.tolist()

    def test_processing_gain_limit(self, rng):
        """At catastrophic SNR even the spreading gain fails."""
        code = SpreadCode.random(64, rng)
        bits = rng.integers(0, 2, size=20, dtype=np.int8)
        modulator = BPSKModulator()
        soft = modulator.transmit_chain(
            spread(bits, code), snr_db=-35.0, rng=rng
        )
        decoded = despread(soft, code, tau=0.15)
        mistakes = sum(
            1 for got, want in zip(decoded, bits.tolist()) if got != want
        )
        assert mistakes > 0


class TestValidation:
    def test_nyquist_enforced(self):
        with pytest.raises(ConfigurationError):
            BPSKModulator(samples_per_chip=4, carrier_cycles_per_chip=2)

    def test_unaligned_waveform(self):
        modulator = BPSKModulator(samples_per_chip=8)
        with pytest.raises(ConfigurationError):
            modulator.demodulate(np.zeros(13))

    def test_empty_chips(self):
        with pytest.raises(ConfigurationError):
            BPSKModulator().modulate(np.zeros(0))

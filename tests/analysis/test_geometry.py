"""Unit tests for the Theorem 3 geometry."""

import math

import numpy as np
import pytest

from repro.analysis.geometry import (
    expected_common_neighbors,
    expected_overlap_area,
    lens_area,
)
from repro.errors import ConfigurationError
from repro.sim.field import lens_overlap_fraction


class TestLensArea:
    def test_coincident_circles(self):
        assert lens_area(0.0, 2.0) == pytest.approx(math.pi * 4.0)

    def test_no_overlap(self):
        assert lens_area(2.0, 1.0) == 0.0
        assert lens_area(5.0, 1.0) == 0.0

    def test_monotone_decreasing_in_distance(self):
        values = [lens_area(d, 1.0) for d in (0.0, 0.5, 1.0, 1.5, 1.99)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_known_value_at_radius(self):
        """At d = r the lens is 2r²cos⁻¹(1/2) − (r/2)√(3r²)."""
        r = 3.0
        expected = 2 * r**2 * math.acos(0.5) - (r / 2) * math.sqrt(3) * r
        assert lens_area(r, r) == pytest.approx(expected)

    def test_scales_with_radius_squared(self):
        assert lens_area(2.0, 2.0) == pytest.approx(4.0 * lens_area(1.0, 1.0))

    def test_monte_carlo_agreement(self, rng):
        """Area by dart-throwing matches the closed form."""
        d, r = 0.8, 1.0
        points = rng.uniform(-1.0, 2.0, size=(200_000, 2))
        inside_a = (points**2).sum(axis=1) <= r**2
        inside_b = ((points - [d, 0.0]) ** 2).sum(axis=1) <= r**2
        fraction = np.mean(inside_a & inside_b)
        estimate = fraction * 9.0  # sample box area
        assert estimate == pytest.approx(lens_area(d, r), rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lens_area(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            lens_area(0.0, 0.0)


class TestExpectedOverlap:
    def test_matches_paper_closed_form(self):
        """E[A] = (pi - 3*sqrt(3)/4) a^2 — the constant Theorem 3 uses."""
        a = 300.0
        expected = (math.pi - 3.0 * math.sqrt(3.0) / 4.0) * a**2
        assert expected_overlap_area(a) == pytest.approx(expected, rel=1e-9)

    def test_fraction_consistency(self):
        """expected_overlap / disc area == lens_overlap_fraction()."""
        a = 1.0
        fraction = expected_overlap_area(a) / (math.pi * a**2)
        assert fraction == pytest.approx(lens_overlap_fraction(), rel=1e-9)


class TestCommonNeighbors:
    def test_theorem3_form(self):
        g = 22.6
        assert expected_common_neighbors(g) == pytest.approx(
            g * lens_overlap_fraction() - 1.0
        )

    def test_clamped_at_zero(self):
        assert expected_common_neighbors(0.5) == 0.0

    def test_include_endpoints(self):
        g = 10.0
        assert expected_common_neighbors(g, include_endpoints=True) == (
            pytest.approx(g * lens_overlap_fraction())
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_common_neighbors(0.0)

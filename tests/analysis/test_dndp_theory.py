"""Unit tests for Theorem 1 and 2 closed forms."""

import numpy as np
import pytest

from repro.adversary.compromise import CompromiseModel
from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.analysis.dndp_theory import (
    dndp_expected_latency,
    dndp_lower_bound,
    dndp_probability_bounds,
    dndp_upper_bound,
    jamming_beta,
    jamming_beta_prime,
)
from repro.core.config import default_config
from repro.core.dndp import DNDPSampler
from repro.predistribution.analysis import (
    probability_at_least_one_shared,
)
from repro.predistribution.authority import PreDistributor


class TestBetas:
    def test_beta_formula(self):
        config = default_config()
        c = config.pool_size * _alpha(config)
        expected = min(8 * 2 / c, 1.0)
        assert jamming_beta(config, 20) == pytest.approx(expected)

    def test_beta_prime_is_triple(self):
        config = default_config()
        beta = jamming_beta(config, 20)
        assert jamming_beta_prime(config, 20) == pytest.approx(
            min(3 * beta, 1.0)
        )

    def test_no_compromise_zero(self):
        config = default_config()
        assert jamming_beta(config, 0) == 0.0
        assert jamming_beta_prime(config, 0) == 0.0


def _alpha(config):
    from repro.predistribution.analysis import code_compromise_probability

    return code_compromise_probability(
        config.n_nodes, config.share_count, config.n_compromised
    )


class TestTheorem1:
    def test_bounds_ordered(self):
        config = default_config()
        for q in (0, 20, 60, 100):
            low, high = dndp_probability_bounds(config, q)
            assert 0 <= low <= high <= 1

    def test_no_compromise_equals_share_probability(self):
        """With q = 0 both bounds reduce to P(at least one shared code)."""
        config = default_config()
        expected = probability_at_least_one_shared(
            config.n_nodes, config.codes_per_node, config.share_count
        )
        assert dndp_lower_bound(config, 0) == pytest.approx(expected)
        assert dndp_upper_bound(config, 0) == pytest.approx(expected)

    def test_monotone_decreasing_in_q(self):
        config = default_config()
        lows = [dndp_lower_bound(config, q) for q in (0, 20, 40, 80)]
        assert all(a >= b for a, b in zip(lows, lows[1:]))

    def test_lower_bound_matches_sampler(self, rng):
        """Closed form vs the per-pair Monte Carlo process (reactive)."""
        config = default_config().replace(
            n_nodes=300, codes_per_node=20, share_count=15, n_compromised=10
        )
        distributor = PreDistributor(300, 20, 15)
        successes = trials = 0
        for round_ in range(4):
            assignment = distributor.assign(rng)
            compromise = CompromiseModel(assignment).compromise_random(
                10, rng
            )
            jamming = JammingModel.from_compromise(
                JammerStrategy.REACTIVE, compromise, 8, 1.0
            )
            sampler = DNDPSampler(config, jamming)
            for a in range(0, 300, 3):
                for b in range(a + 1, 300, 7):
                    shared = assignment.shared_codes(a, b)
                    successes += sampler.sample_pair(shared, rng).success
                    trials += 1
        empirical = successes / trials
        theory = dndp_lower_bound(config, 10)
        assert empirical == pytest.approx(theory, abs=0.03)

    def test_upper_bound_matches_sampler(self, rng):
        config = default_config().replace(
            n_nodes=300, codes_per_node=20, share_count=15, n_compromised=30
        )
        distributor = PreDistributor(300, 20, 15)
        successes = trials = 0
        for round_ in range(4):
            assignment = distributor.assign(rng)
            compromise = CompromiseModel(assignment).compromise_random(
                30, rng
            )
            jamming = JammingModel.from_compromise(
                JammerStrategy.RANDOM, compromise, 8, 1.0
            )
            sampler = DNDPSampler(config, jamming)
            for a in range(0, 300, 3):
                for b in range(a + 1, 300, 7):
                    shared = assignment.shared_codes(a, b)
                    successes += sampler.sample_pair(shared, rng).success
                    trials += 1
        empirical = successes / trials
        theory = dndp_upper_bound(config, 30)
        assert empirical == pytest.approx(theory, abs=0.035)


class TestTheorem2:
    def test_paper_value_at_defaults(self):
        """T_D ~ 1.70 s at Table I parameters (Fig. 2(b): < 2 s)."""
        latency = dndp_expected_latency(default_config())
        assert 1.5 < latency < 2.0

    def test_components(self):
        config = default_config()
        c = config
        schedule = (
            c.rho * 100 * 304 * 512**2 * 42 / 2
        )
        auth = 2 * 512 * 160 / 22e6
        assert dndp_expected_latency(config) == pytest.approx(
            schedule + auth + 2 * 11e-3
        )

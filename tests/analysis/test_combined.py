"""Unit tests for the combined JR-SND metrics."""

import pytest

from repro.analysis.combined import (
    combined_latency,
    combined_probability,
    theoretical_jrsnd_probability,
)
from repro.analysis.dndp_theory import dndp_expected_latency
from repro.analysis.mndp_theory import mndp_expected_latency
from repro.core.config import default_config
from repro.errors import ConfigurationError


class TestCombinedProbability:
    def test_formula(self):
        assert combined_probability(0.6, 0.5) == pytest.approx(0.8)

    def test_bounds(self):
        assert combined_probability(0.0, 0.0) == 0.0
        assert combined_probability(1.0, 0.0) == 1.0
        assert combined_probability(0.0, 1.0) == 1.0

    def test_at_least_max(self):
        for p_d in (0.2, 0.5, 0.9):
            for p_m in (0.1, 0.6):
                combined = combined_probability(p_d, p_m)
                assert combined >= max(p_d, p_m) - 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            combined_probability(1.2, 0.5)


class TestCombinedLatency:
    def test_max_of_both(self):
        config = default_config()
        assert combined_latency(config) == pytest.approx(
            max(
                dndp_expected_latency(config),
                mndp_expected_latency(config),
            )
        )

    def test_dndp_dominates_at_default_m(self):
        """At m = 100 D-NDP is slower (Fig. 2(b) beyond crossover)."""
        config = default_config()
        assert combined_latency(config) == pytest.approx(
            dndp_expected_latency(config)
        )

    def test_mndp_dominates_at_small_m(self):
        config = default_config().replace(codes_per_node=20)
        assert combined_latency(config) == pytest.approx(
            mndp_expected_latency(config)
        )


class TestClosedFormJrsnd:
    def test_reasonable_at_defaults(self):
        value = theoretical_jrsnd_probability(default_config(), 20)
        assert 0.9 < value <= 1.0

    def test_decreasing_in_q(self):
        config = default_config()
        values = [
            theoretical_jrsnd_probability(config, q) for q in (0, 40, 100)
        ]
        assert values[0] >= values[1] >= values[2]

"""Unit tests for Theorems 3 and 4."""

import pytest

from repro.analysis.mndp_theory import (
    mndp_expected_latency,
    mndp_two_hop_bound,
)
from repro.core.config import default_config
from repro.errors import ConfigurationError
from repro.sim.field import lens_overlap_fraction


class TestTheorem3:
    def test_form(self):
        p_d, g = 0.2, 22.6
        common = g * lens_overlap_fraction() - 1
        expected = 1 - (1 - p_d**2) ** common
        assert mndp_two_hop_bound(p_d, g) == pytest.approx(expected)

    def test_monotone_in_p_d(self):
        values = [mndp_two_hop_bound(p, 22.6) for p in (0.1, 0.3, 0.6, 0.9)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_monotone_in_degree(self):
        values = [mndp_two_hop_bound(0.3, g) for g in (5, 10, 20, 40)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_sparse_network_zero(self):
        # With fewer than 1/overlap_fraction neighbors there is no
        # common neighbor in expectation.
        assert mndp_two_hop_bound(0.5, 1.0) == 0.0

    def test_perfect_dndp(self):
        assert mndp_two_hop_bound(1.0, 22.6) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mndp_two_hop_bound(1.5, 22.6)
        with pytest.raises(ConfigurationError):
            mndp_two_hop_bound(0.5, 0.0)


class TestTheorem4:
    def test_default_nu2_value(self):
        """~0.8 s at Table I parameters and g ~ 22.6."""
        latency = mndp_expected_latency(default_config())
        assert 0.6 < latency < 1.1

    def test_paper_nu6_about_four_seconds(self):
        """Fig. 5(b): T ~ 4 s at nu = 6 (shape: same order)."""
        latency = mndp_expected_latency(default_config(), nu=6)
        assert 3.0 < latency < 7.0

    def test_growth_in_nu(self):
        config = default_config()
        values = [mndp_expected_latency(config, nu=nu) for nu in range(1, 9)]
        assert all(a < b for a, b in zip(values, values[1:]))
        # Quadratic-ish growth: ratio of increments increases.
        assert (values[7] - values[6]) > (values[1] - values[0])

    def test_crypto_term(self):
        config = default_config()
        nu, g = 3, 20.0
        from repro.core.timing import ProtocolTiming

        t_nu = ProtocolTiming(config).theorem4_t_nu(nu, g)
        expected = t_nu + 2 * nu * (nu + 1) * config.t_ver + 2 * nu * config.t_sig
        assert mndp_expected_latency(config, nu=nu, degree=g) == pytest.approx(
            expected
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mndp_expected_latency(default_config(), nu=0)
        with pytest.raises(ConfigurationError):
            mndp_expected_latency(default_config(), degree=-1.0)

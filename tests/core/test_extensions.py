"""Tests for the paper's optional/extension features.

- GPS position filtering in M-NDP (Section V-C's false-positive
  elimination option);
- the multi-antenna broadcast extension (the paper's stated future
  work).
"""

import pytest

from repro.analysis.dndp_theory import (
    dndp_expected_latency,
    dndp_expected_latency_antennas,
)
from repro.core.config import JRSNDConfig, default_config
from repro.core.timing import ProtocolTiming
from repro.errors import ConfigurationError
from repro.experiments.scenarios import build_event_network


def _line_config(use_gps, tx_range=300.0):
    return JRSNDConfig(
        n_nodes=3,
        codes_per_node=2,
        share_count=2,
        n_compromised=0,
        field_width=900.0,
        field_height=50.0,
        tx_range=tx_range,
        rho=1e-9,
        nu=2,
        use_gps=use_gps,
    )


def _run_line_topology(use_gps, seed=4):
    """A(0) - C(250) - B(500): A and B are NOT physical neighbors but
    share logical neighbor C, so M-NDP requests reach both ends."""
    positions = [(0.0, 25.0), (250.0, 25.0), (500.0, 25.0)]
    net = build_event_network(
        _line_config(use_gps), seed=seed, positions=positions
    )
    for node in net.nodes:
        node.initiate_dndp()
    net.simulator.run(until=30.0)
    assert (0, 1) in net.logical_pairs()
    assert (1, 2) in net.logical_pairs()
    start = net.simulator.now
    for node in net.nodes:
        node.initiate_mndp(nu=2)
    net.simulator.run(until=start + 120.0)
    return net


class TestGpsFiltering:
    def test_out_of_range_request_filtered(self):
        """With GPS on, node 2 drops node 0's request before doing the
        expensive key derivation / beaconing."""
        net = _run_line_topology(use_gps=True)
        assert net.trace.counter("mndp.gps_filtered") >= 1
        assert (0, 2) not in net.logical_pairs()

    def test_without_gps_wasted_work_but_same_outcome(self):
        """Without GPS, the confirmation exchange still prevents the
        false positive — at the cost of wasted responses/beacons."""
        net = _run_line_topology(use_gps=False)
        assert net.trace.counter("mndp.gps_filtered") == 0
        assert (0, 2) not in net.logical_pairs()

    def test_gps_does_not_block_true_neighbors(self, small_config):
        config = small_config.replace(use_gps=True)
        net = build_event_network(config, seed=0)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=30.0)
        start = net.simulator.now
        for node in net.nodes:
            node.initiate_mndp(nu=3)
        net.simulator.run(until=start + 120.0)
        physical = set(net.node_pairs_in_range())
        assert net.logical_pairs() == physical

    def test_position_bound_into_signature(self):
        """Tampering with the embedded position breaks the signature."""
        from repro.core.messages import MNDPRequest
        from repro.core.mndp import validate_request_chain
        from repro.crypto.identity import TrustedAuthority
        from repro.crypto.signatures import SignatureScheme

        authority = TrustedAuthority(b"m")
        scheme = SignatureScheme(authority.public_parameters())
        a = authority.make_id(1)
        key = authority.issue_private_key(a)
        request = MNDPRequest(
            source=a, source_neighbors=(), nonce=1, hop_budget=2,
            source_signature=None, source_position=(10.0, 20.0),
        )
        signature = scheme.sign(key, request.source_signed_bytes())
        good = MNDPRequest(
            source=a, source_neighbors=(), nonce=1, hop_budget=2,
            source_signature=signature, source_position=(10.0, 20.0),
        )
        tampered = MNDPRequest(
            source=a, source_neighbors=(), nonce=1, hop_budget=2,
            source_signature=signature, source_position=(500.0, 20.0),
        )
        assert validate_request_chain(good, scheme)
        assert not validate_request_chain(tampered, scheme)


class TestMultiAntenna:
    def test_code_cycle(self):
        config = default_config().replace(tx_antennas=4)
        assert ProtocolTiming(config).code_cycle == 25

    def test_single_antenna_matches_theorem2(self):
        config = default_config()
        assert dndp_expected_latency_antennas(config) == pytest.approx(
            dndp_expected_latency(config), rel=0.02
        )

    def test_latency_shrinks_with_antennas(self):
        latencies = [
            dndp_expected_latency_antennas(
                default_config().replace(tx_antennas=k)
            )
            for k in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(latencies, latencies[1:]))
        # The dominant schedule term scales ~1/k.
        assert latencies[0] / latencies[3] > 3.0

    def test_antennas_cannot_exceed_codes(self):
        with pytest.raises(ConfigurationError):
            default_config().replace(codes_per_node=4, tx_antennas=8)

    def test_event_sim_faster_with_antennas(self):
        """The event-driven handshake completes sooner with parallel
        HELLO broadcasts."""
        import numpy as np

        def measure(k, seeds=range(8)):
            totals = []
            for seed in seeds:
                config = JRSNDConfig(
                    n_nodes=2, codes_per_node=4, share_count=2,
                    n_compromised=0, field_width=100.0, field_height=100.0,
                    tx_range=300.0, rho=1e-9, tx_antennas=k,
                )
                net = build_event_network(config, seed=seed)
                net.nodes[0].initiate_dndp()
                net.simulator.run(until=10.0)
                session = net.nodes[0].session_with(net.nodes[1].node_id)
                if session and session.established_at:
                    totals.append(session.established_at)
            return float(np.mean(totals))

        assert measure(4) < measure(1)


class TestWireFidelity:
    def test_wire_mode_equivalent_to_object_mode(self, small_config):
        """With wire_fidelity on, every message crosses the air as its
        real bit encoding — and the network converges to the identical
        logical graph with zero undecodable frames."""

        def run(wire_fidelity):
            config = small_config.replace(
                wire_fidelity=wire_fidelity, nu=3
            )
            net = build_event_network(config, seed=0)
            for node in net.nodes:
                node.initiate_dndp()
            net.simulator.run(until=30.0)
            start = net.simulator.now
            for node in net.nodes:
                node.initiate_mndp()
            net.simulator.run(until=start + 120.0)
            return net

        plain = run(False)
        wired = run(True)
        assert wired.logical_pairs() == plain.logical_pairs()
        assert wired.trace.counter("wire.undecodable") == 0

    def test_frames_actually_on_the_air(self, small_config):
        """In wire mode the medium carries Frame objects, not the
        typed messages."""
        from repro.dsss.frame import Frame

        config = small_config.replace(wire_fidelity=True)
        net = build_event_network(config, seed=0)
        seen_frames = []

        class Sniffer:
            def on_transmission(self, tx, medium):
                seen_frames.append(tx.frame)

        net.medium.add_jammer(Sniffer())
        net.nodes[0].initiate_dndp(rounds=1)
        net.simulator.run(until=1.0)
        assert seen_frames
        assert all(isinstance(f, Frame) for f in seen_frames)

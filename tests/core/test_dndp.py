"""Unit tests for the D-NDP Monte Carlo sampler (Theorem 1's process)."""

import numpy as np
import pytest

from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.core.config import default_config
from repro.core.dndp import DNDPSampler, DNDPSession, SessionState
from repro.crypto.identity import NodeId
from repro.errors import ProtocolError


def _sampler(strategy, compromised, config=None, z=8):
    config = config or default_config()
    jamming = JammingModel(strategy, frozenset(compromised), z, config.mu)
    return DNDPSampler(config, jamming)


class TestSamplePair:
    def test_no_shared_codes_fails(self, rng):
        sampler = _sampler(JammerStrategy.REACTIVE, [])
        outcome = sampler.sample_pair([], rng)
        assert not outcome.success
        assert outcome.shared_codes == 0

    def test_safe_code_always_succeeds_reactive(self, rng):
        sampler = _sampler(JammerStrategy.REACTIVE, [1, 2, 3])
        for _ in range(20):
            outcome = sampler.sample_pair([9], rng)
            assert outcome.success
            assert outcome.surviving_codes == (9,)

    def test_all_compromised_fails_reactive(self, rng):
        sampler = _sampler(JammerStrategy.REACTIVE, [1, 2, 3])
        for _ in range(20):
            assert not sampler.sample_pair([1, 2], rng).success

    def test_redundancy_design(self, rng):
        """x >= 2 with one safe code: the safe sub-session carries it."""
        sampler = _sampler(JammerStrategy.REACTIVE, [1])
        outcome = sampler.sample_pair([1, 5], rng)
        assert outcome.success
        assert 5 in outcome.surviving_codes
        assert 1 not in outcome.surviving_codes

    def test_random_jamming_matches_theorem1_x1(self, rng):
        """P(fail | x=1 compromised) = beta + beta' - beta beta'."""
        c = 200
        sampler = _sampler(JammerStrategy.RANDOM, range(c))
        beta = 16 / c
        beta_prime = 3 * beta
        expected_fail = beta + beta_prime - beta * beta_prime
        fails = sum(
            not sampler.sample_pair([0], rng).success for _ in range(5000)
        )
        assert fails / 5000 == pytest.approx(expected_fail, abs=0.02)

    def test_random_jamming_x2_joint_failure(self, rng):
        c = 50
        sampler = _sampler(JammerStrategy.RANDOM, range(c))
        beta = min(16 / c, 1.0)
        kill = beta + min(3 * beta, 1.0) - beta * min(3 * beta, 1.0)
        fails = sum(
            not sampler.sample_pair([0, 1], rng).success
            for _ in range(5000)
        )
        assert fails / 5000 == pytest.approx(kill**2, abs=0.02)

    def test_latency_sampled_on_success(self, rng):
        sampler = _sampler(JammerStrategy.REACTIVE, [])
        outcome = sampler.sample_pair([3], rng, with_latency=True)
        assert outcome.latency is not None
        assert outcome.latency > 0


class TestLatency:
    def test_mean_matches_theorem2(self, rng):
        sampler = _sampler(JammerStrategy.REACTIVE, [])
        samples = [sampler.sample_latency(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(
            sampler.expected_latency(), rel=0.02
        )

    def test_expected_latency_closed_form(self):
        """Theorem 2: rho m (3m+4) N^2 l_h / 2 + 2 N l_f / R + 2 t_key."""
        config = default_config()
        sampler = _sampler(JammerStrategy.REACTIVE, [], config)
        c = config
        expected = (
            c.rho * c.codes_per_node * (3 * c.codes_per_node + 4)
            * c.code_length**2 * c.hello_coded_bits / 2
            + 2 * c.code_length * c.auth_frame_bits / c.chip_rate
            + 2 * c.t_key
        )
        assert sampler.expected_latency() == pytest.approx(expected)

    def test_paper_headline_under_two_seconds(self):
        """Fig. 2(b): at m = 100 the default latency is below 2 s."""
        sampler = _sampler(JammerStrategy.REACTIVE, [])
        assert sampler.expected_latency() < 2.0

    def test_quadratic_growth_in_m(self):
        config = default_config()
        latencies = [
            _sampler(
                JammerStrategy.REACTIVE, [],
                config.replace(codes_per_node=m),
            ).expected_latency()
            for m in (50, 100, 200)
        ]
        # Doubling m should roughly quadruple the schedule term.
        assert latencies[2] / latencies[1] > 3.0
        assert latencies[1] / latencies[0] > 3.0


class TestSessionState:
    def test_add_code(self):
        session = DNDPSession(peer=NodeId(5), initiator=True)
        session.add_code(3)
        session.add_code(3)
        assert session.codes == {3}

    def test_require_state(self):
        session = DNDPSession(peer=NodeId(5), initiator=True)
        session.require_state(SessionState.IDLE)
        with pytest.raises(ProtocolError):
            session.require_state(SessionState.ESTABLISHED)

    def test_latency(self):
        session = DNDPSession(
            peer=NodeId(5), initiator=True, started_at=1.0
        )
        assert session.latency is None
        session.established_at = 3.5
        assert session.latency == pytest.approx(2.5)


class TestIntelligentStrategy:
    def test_spares_hellos(self, rng):
        from repro.adversary.jammer import JammerStrategy, JammingModel

        model = JammingModel(
            JammerStrategy.INTELLIGENT, frozenset([1, 2]), 8, 1.0
        )
        # HELLOs always pass, even under compromised codes...
        assert not any(model.message_jammed(1, rng) for _ in range(20))
        # ...but the later burst always dies on compromised codes.
        assert all(model.burst_jammed(1, 3, rng) for _ in range(20))
        assert not model.burst_jammed(9, 3, rng)

    def test_defeats_single_code_but_not_redundancy(self, rng):
        """The Section V-B argument, at the sampler level."""
        from repro.adversary.jammer import JammerStrategy, JammingModel

        model = JammingModel(
            JammerStrategy.INTELLIGENT, frozenset([1]), 8, 1.0
        )
        sampler = DNDPSampler(default_config(), model)
        shared = [1, 5]  # one compromised, one safe
        with_redundancy = [
            sampler.sample_pair(shared, rng, redundancy=True).success
            for _ in range(200)
        ]
        without = [
            sampler.sample_pair(shared, rng, redundancy=False).success
            for _ in range(200)
        ]
        assert all(with_redundancy)  # the safe sub-session always wins
        # The strawman fails whenever it picks the compromised code.
        failure_rate = 1 - sum(without) / len(without)
        assert failure_rate == pytest.approx(0.5, abs=0.1)

"""Unit tests for protocol message encodings."""

import pytest

from repro.core.config import default_config
from repro.core.messages import (
    AuthRequest,
    Confirm,
    Hello,
    MNDPExtension,
    MNDPRequest,
    MNDPResponse,
    nonce_bytes,
)
from repro.crypto.identity import TrustedAuthority
from repro.crypto.signatures import SignatureScheme
from repro.errors import ConfigurationError


@pytest.fixture
def ids():
    authority = TrustedAuthority(b"m")
    return authority, [authority.make_id(i) for i in range(1, 6)]


class TestSimpleMessages:
    def test_hello_wire_bits(self, ids):
        _, nodes = ids
        assert Hello(nodes[0]).wire_bits(default_config()) == 21

    def test_confirm_wire_bits(self, ids):
        _, nodes = ids
        assert Confirm(nodes[0]).wire_bits(default_config()) == 21

    def test_auth_request_wire_bits(self, ids):
        _, nodes = ids
        config = default_config()
        message = AuthRequest(nodes[0], nonce=5, mac_tag=b"x")
        assert message.wire_bits(config) == 16 + 20 + 44

    def test_auth_mac_input_stable(self, ids):
        _, nodes = ids
        message = AuthRequest(nodes[0], nonce=5, mac_tag=b"x")
        assert message.mac_input() == (
            nodes[0].to_bytes(),
            nonce_bytes(5),
        )

    def test_nonce_bytes_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            nonce_bytes(-1)


def _signed_request(authority, nodes, nu=2):
    scheme = SignatureScheme(authority.public_parameters())
    key = authority.issue_private_key(nodes[0])
    request = MNDPRequest(
        source=nodes[0],
        source_neighbors=(nodes[1], nodes[2]),
        nonce=7,
        hop_budget=nu,
        source_signature=None,
    )
    signature = scheme.sign(key, request.source_signed_bytes())
    return MNDPRequest(
        source=request.source,
        source_neighbors=request.source_neighbors,
        nonce=request.nonce,
        hop_budget=request.hop_budget,
        source_signature=signature,
    ), scheme


class TestMNDPRequest:
    def test_hops_traversed(self, ids):
        authority, nodes = ids
        request, scheme = _signed_request(authority, nodes)
        assert request.hops_traversed == 1

    def test_extension_chain(self, ids):
        authority, nodes = ids
        request, scheme = _signed_request(authority, nodes)
        key_c = authority.issue_private_key(nodes[1])
        unsigned = MNDPExtension(nodes[1], (nodes[0], nodes[3]), None)
        signature = scheme.sign(
            key_c, unsigned.signed_bytes(request.source_signed_bytes())
        )
        extended = request.extended(
            MNDPExtension(nodes[1], (nodes[0], nodes[3]), signature)
        )
        assert extended.hops_traversed == 2
        assert extended.path_nodes() == (nodes[0], nodes[1])
        # The signed-bytes chain reproduces what was signed.
        assert scheme.verify(
            nodes[1],
            extended.extension_signed_bytes(0),
            extended.extensions[0].signature,
        )

    def test_wire_bits_accounting(self, ids):
        authority, nodes = ids
        config = default_config()
        request, _ = _signed_request(authority, nodes)
        expected = (
            config.nonce_bits
            + config.hop_field_bits
            + 3 * config.id_bits  # source + 2 neighbors
            + config.signature_bits
        )
        assert request.wire_bits(config) == expected

    def test_rejects_zero_hop_budget(self, ids):
        _, nodes = ids
        with pytest.raises(ConfigurationError):
            MNDPRequest(nodes[0], (), 1, 0, None)

    def test_signed_bytes_bind_all_fields(self, ids):
        authority, nodes = ids
        request, _ = _signed_request(authority, nodes)
        other = MNDPRequest(
            source=request.source,
            source_neighbors=request.source_neighbors,
            nonce=request.nonce + 1,
            hop_budget=request.hop_budget,
            source_signature=request.source_signature,
        )
        assert request.source_signed_bytes() != other.source_signed_bytes()


class TestMNDPResponse:
    def test_signed_bytes_and_extension(self, ids):
        authority, nodes = ids
        scheme = SignatureScheme(authority.public_parameters())
        key_b = authority.issue_private_key(nodes[2])
        response = MNDPResponse(
            source=nodes[0],
            via=nodes[1],
            responder=nodes[2],
            responder_neighbors=(nodes[1],),
            nonce=9,
            hop_budget=2,
            responder_signature=None,
        )
        signature = scheme.sign(key_b, response.responder_signed_bytes())
        response = MNDPResponse(
            source=response.source,
            via=response.via,
            responder=response.responder,
            responder_neighbors=response.responder_neighbors,
            nonce=response.nonce,
            hop_budget=response.hop_budget,
            responder_signature=signature,
        )
        assert scheme.verify(
            nodes[2], response.responder_signed_bytes(), signature
        )
        key_c = authority.issue_private_key(nodes[1])
        unsigned = MNDPExtension(nodes[1], (nodes[0],), None)
        ext_sig = scheme.sign(
            key_c, unsigned.signed_bytes(response.responder_signed_bytes())
        )
        extended = response.extended(
            MNDPExtension(nodes[1], (nodes[0],), ext_sig)
        )
        assert scheme.verify(
            nodes[1],
            extended.extension_signed_bytes(0),
            ext_sig,
        )

    def test_wire_bits(self, ids):
        _, nodes = ids
        config = default_config()
        response = MNDPResponse(
            source=nodes[0],
            via=nodes[1],
            responder=nodes[2],
            responder_neighbors=(nodes[1], nodes[3]),
            nonce=9,
            hop_budget=2,
            responder_signature=None,
        )
        expected = (
            config.nonce_bits
            + config.hop_field_bits
            + 5 * config.id_bits
            + config.signature_bits
        )
        assert response.wire_bits(config) == expected

"""Unit tests for the Section V-B timing model."""

import math

import pytest

from repro.core.config import default_config
from repro.core.timing import ProtocolTiming


@pytest.fixture
def timing():
    return ProtocolTiming(default_config())


class TestDerivedTimes:
    def test_t_hello(self, timing):
        # t_h = l_h N / R = 42 * 512 / 22e6.
        assert timing.t_hello == pytest.approx(42 * 512 / 22e6)

    def test_t_buffer(self, timing):
        assert timing.t_buffer == pytest.approx(101 * timing.t_hello)

    def test_gap_ratio(self, timing):
        # lambda = rho N m R = 1e-11 * 512 * 100 * 22e6 ~ 11.26.
        assert timing.gap_ratio == pytest.approx(11.264)

    def test_t_process(self, timing):
        assert timing.t_process == pytest.approx(
            timing.gap_ratio * timing.t_buffer
        )

    def test_hello_rounds_formula(self, timing):
        config = default_config()
        expected = math.ceil(
            (timing.gap_ratio + 1) * (config.codes_per_node + 1)
            / config.codes_per_node
        )
        assert timing.hello_rounds == expected

    def test_broadcast_covers_schedule(self, timing):
        """r m t_h >= (lambda + 1) t_b — the coverage requirement."""
        assert timing.hello_broadcast_duration >= (
            (timing.gap_ratio + 1.0) * timing.t_buffer
        ) - 1e-12

    def test_paper_example_lambda(self):
        """The paper's example: rho=8.3e-12, N=512, m=1000, R=22e6
        gives lambda ~ 94."""
        config = default_config().replace(rho=8.3e-12, codes_per_node=1000)
        timing = ProtocolTiming(config)
        assert timing.gap_ratio == pytest.approx(93.5, rel=0.01)

    def test_t_auth_message(self, timing):
        assert timing.t_auth_message == pytest.approx(160 * 512 / 22e6)

    def test_schedule_clamps_small_lambda(self):
        config = default_config().replace(codes_per_node=1, rho=1e-13)
        timing = ProtocolTiming(config)
        assert timing.gap_ratio < 1
        schedule = timing.schedule()
        assert schedule.t_process >= schedule.t_buffer


class TestMndpSizes:
    def test_request_bits_grow_per_hop(self, timing):
        first = timing.mndp_request_bits(0, neighbor_count=20)
        second = timing.mndp_request_bits(1, neighbor_count=20)
        config = default_config()
        per_node = 21 * config.id_bits + config.signature_bits
        assert second - first == per_node

    def test_theorem4_t_nu_form(self, timing):
        config = default_config()
        g = 22.6
        nu = 2
        per_hop = (g + 1) * config.id_bits + 2 * config.signature_bits
        expected = (
            config.code_length
            / config.chip_rate
            * (3 * nu * (nu + 1) / 2 * per_hop + 2 * nu * (20 + 4))
        )
        assert timing.theorem4_t_nu(2, g) == pytest.approx(expected)

"""Event-driven protocol tests: the full JR-SND node on the kernel."""

import pytest

from repro.adversary.jammer import JammerStrategy
from repro.core.dndp import SessionState
from repro.core.jrsnd import FakeSignedRequest
from repro.experiments.scenarios import build_event_network


def _run_dndp(net, until=30.0):
    for node in net.nodes:
        node.initiate_dndp()
    net.simulator.run(until=until)


def _run_mndp(net, nu=2, extra=90.0):
    start = net.simulator.now
    for node in net.nodes:
        node.initiate_mndp(nu=nu)
    net.simulator.run(until=start + extra)


class TestDNDPEvent:
    def test_all_code_sharing_pairs_discover(self, small_config):
        net = build_event_network(small_config, seed=11)
        _run_dndp(net)
        logical = net.logical_pairs()
        for a, b in net.node_pairs_in_range():
            if net.assignment.shared_codes(a, b):
                assert (a, b) in logical, f"pair {(a, b)} failed D-NDP"

    def test_sessions_derive_equal_session_codes(self, small_config):
        net = build_event_network(small_config, seed=11)
        _run_dndp(net)
        for a, b in net.logical_pairs():
            node_a, node_b = net.nodes[a], net.nodes[b]
            session_ab = node_a.session_with(node_b.node_id)
            session_ba = node_b.session_with(node_a.node_id)
            assert session_ab.state is SessionState.ESTABLISHED
            assert session_ba.state is SessionState.ESTABLISHED
            assert session_ab.session_code == session_ba.session_code

    def test_shared_keys_agree(self, small_config):
        net = build_event_network(small_config, seed=11)
        _run_dndp(net)
        for a, b in net.logical_pairs():
            session_ab = net.nodes[a].session_with(net.nodes[b].node_id)
            session_ba = net.nodes[b].session_with(net.nodes[a].node_id)
            assert session_ab.shared_key == session_ba.shared_key

    def test_latencies_recorded(self, small_config):
        net = build_event_network(small_config, seed=11)
        _run_dndp(net)
        samples = net.trace.samples("dndp.latency")
        assert samples
        assert all(latency > 0 for latency in samples)

    def test_out_of_range_nodes_not_discovered(self, small_config):
        config = small_config.replace(
            n_nodes=2, share_count=2, field_width=2000.0, field_height=10.0
        )
        positions = [(0.0, 0.0), (1500.0, 0.0)]  # 1500 m apart, range 300
        net = build_event_network(config, seed=3, positions=positions)
        _run_dndp(net)
        assert net.logical_pairs() == set()

    def test_no_shared_codes_no_direct_discovery(self, small_config):
        config = small_config.replace(codes_per_node=1, share_count=2)
        net = build_event_network(config, seed=1)
        _run_dndp(net)
        for a, b in net.logical_pairs():
            assert net.assignment.shared_codes(a, b)


class TestMNDPEvent:
    def test_recovers_codeless_physical_pairs(self, small_config):
        """Across several seeds, every in-range pair without shared
        codes is discovered through a relay, and never a false one."""
        recovered_any = False
        for seed in range(4):
            net = build_event_network(small_config, seed=seed)
            _run_dndp(net)
            direct = set(net.logical_pairs())
            _run_mndp(net, nu=3)
            logical = net.logical_pairs()
            physical = set(net.node_pairs_in_range())
            assert logical <= physical  # no false positives
            recovered = logical - direct
            codeless = {
                pair
                for pair in physical
                if not net.assignment.shared_codes(*pair)
            }
            if codeless & recovered:
                recovered_any = True
        assert recovered_any

    def test_mndp_counters(self, small_config):
        net = build_event_network(small_config, seed=0)
        _run_dndp(net)
        _run_mndp(net, nu=2)
        counters = net.trace.counters()
        assert counters.get("mndp.verifications", 0) > 0

    def test_outcome_totals(self, small_config):
        net = build_event_network(small_config, seed=0)
        _run_dndp(net)
        _run_mndp(net, nu=2)
        for node in net.nodes:
            outcome = node.outcome()
            assert outcome.total == len(outcome.logical_neighbors)
            assert outcome.dndp_count + outcome.mndp_count == outcome.total


class TestJammedEvent:
    def test_reactive_jamming_blocks_compromised_pairs(self, small_config):
        """With every node's codes compromised, D-NDP must fail."""
        config = small_config.replace(n_compromised=5)
        net = build_event_network(
            config, seed=2, jammer_strategy=JammerStrategy.REACTIVE
        )
        assert net.compromise.n_nodes == 5  # all nodes captured
        _run_dndp(net)
        assert net.logical_pairs() == set()
        assert net.jammer.effective > 0

    def test_benign_network_unaffected_by_random_jammer_without_codes(
        self, small_config
    ):
        net = build_event_network(
            small_config, seed=11, jammer_strategy=JammerStrategy.RANDOM
        )
        assert net.compromise.n_codes == 0  # q = 0
        _run_dndp(net)
        for a, b in net.node_pairs_in_range():
            if net.assignment.shared_codes(a, b):
                assert (a, b) in net.logical_pairs()


def _inject_fakes(net, victim, code, count):
    """Place fake requests inside the victim's buffered windows so its
    offline scanner actually processes them."""
    net.medium.register_node(99, lambda: victim.position)
    fake = FakeSignedRequest(claimed_sender=net.nodes[1].node_id)
    schedule = victim._schedule
    injected = 0
    window_index = schedule.first_index() + 1
    last_done = 0.0
    while injected < count:
        window = schedule.window(window_index)
        window_index += 1
        slots = int(window.duration // 2e-4) - 1
        offset = window.buffer_start + 1e-5
        for _ in range(min(slots, count - injected)):
            net.simulator.call_at(
                offset,
                net.medium.transmit,
                99,
                code,
                fake,
                1e-4,
            )
            offset += 2e-4
            injected += 1
        last_done = window.processing_done
    net.simulator.run(until=last_done + 1.0)


class TestDoSEvent:
    def test_fake_requests_trigger_revocation(self, small_config):
        net = build_event_network(small_config, seed=11)
        victim = net.nodes[0]
        attacker_code = next(iter(victim.revocation.active_codes()))
        gamma = small_config.revocation_gamma
        _inject_fakes(net, victim, attacker_code, gamma + 3)
        assert attacker_code in victim.revocation.revoked
        assert net.trace.counter("revocation.codes_revoked") >= 1
        # Victim no longer receives anything under the revoked code.
        assert not net.medium.is_listening(victim.index, attacker_code)

    def test_verification_cost_bounded_by_gamma(self, small_config):
        """The victim wastes at most gamma + 1 verifications on one
        compromised code (Section V-D's per-victim bound)."""
        net = build_event_network(small_config, seed=11)
        victim = net.nodes[0]
        code = next(iter(victim.revocation.active_codes()))
        # Count only this victim's share: give it a unique code if
        # possible; otherwise bound by holders * (gamma + 1).
        holders = len(net.assignment.holders_of(code))
        _inject_fakes(
            net, victim, code, 5 * (small_config.revocation_gamma + 1)
        )
        assert net.trace.counter("dos.verifications") >= 1
        assert net.trace.counter("dos.verifications") <= holders * (
            small_config.revocation_gamma + 1
        )


class TestPeriodicDiscovery:
    def test_periodic_initiation_discovers(self, small_config):
        """Nodes left alone with periodic discovery converge on the
        physical-neighbor graph without any manual initiate calls."""
        from repro.experiments.scenarios import build_event_network

        net = build_event_network(small_config, seed=11)
        for node in net.nodes:
            node.start_periodic_discovery(period=60.0)
        net.simulator.run(until=200.0)
        logical = net.logical_pairs()
        assert logical  # something was discovered autonomously
        assert logical <= set(net.node_pairs_in_range())
        # Every direct-capable pair makes it within a few periods.
        for a, b in net.node_pairs_in_range():
            if net.assignment.shared_codes(a, b):
                assert (a, b) in logical

    def test_rejects_bad_period(self, small_config):
        from repro.errors import ConfigurationError
        from repro.experiments.scenarios import build_event_network

        net = build_event_network(small_config, seed=11)
        import pytest
        with pytest.raises(ConfigurationError):
            net.nodes[0].start_periodic_discovery(period=0.0)

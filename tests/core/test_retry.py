"""Handshake retry/timeout hardening: retransmission, terminal FAILED
states, monitor accounting, and stale-session garbage collection."""

import pytest

from repro.core.config import JRSNDConfig
from repro.core.dndp import RetryPolicy, SessionState
from repro.core.messages import AuthResponse
from repro.errors import ProtocolError
from repro.experiments.scenarios import build_event_network
from repro.faults import FaultInjector, FaultPlan

PAIR = JRSNDConfig(
    n_nodes=2,
    codes_per_node=3,
    share_count=2,
    n_compromised=0,
    field_width=100.0,
    field_height=100.0,
    tx_range=300.0,
    rho=1e-9,
)

# Recovery needs the buffered path to have a fighting chance: rho small
# enough that t_p clamps to t_b (back-to-back buffer windows) and an
# AUTH frame clearly shorter than one window, so a retransmitted
# AUTH_REQUEST lands fully inside a window with high probability.
RECOVERY = PAIR.replace(
    codes_per_node=6,
    auth_frame_bits=96,
    rho=1e-11,
)


class _DropAuthResponsesUntil(FaultInjector):
    """Deterministically swallow every AUTH_RESPONSE delivery before a
    cutoff time (``None`` = forever): the lost-response scenario."""

    name = "drop-auth2"

    def __init__(self, until=None):
        self._until = until
        self.dropped = 0

    def drops(self, tx, node, now):
        if not isinstance(tx.frame, AuthResponse):
            return False
        if self._until is not None and now >= self._until:
            return False
        self.dropped += 1
        return True


def _establish_time(seed, config=PAIR):
    """When the benign handshake completes, for cutoff placement."""
    net = build_event_network(config, seed=seed)
    for node in net.nodes:
        node.initiate_dndp()
    net.simulator.run(until=5.0)
    times = [
        session.established_at
        for node in net.nodes
        for session in node.sessions().values()
        if session.established_at is not None
    ]
    assert times, "benign pair run must establish"
    return max(times)


class TestRetryPolicy:
    def test_schedule_shape(self):
        policy = RetryPolicy(
            base_timeout=1.0, max_attempts=3, backoff_factor=2.0,
            max_timeout=5.0,
        )
        assert policy.schedule() == (1.0, 2.0, 4.0, 5.0)
        assert policy.total_budget == 12.0
        assert policy.enabled

    def test_disabled_policy(self):
        policy = RetryPolicy(base_timeout=1.0, max_attempts=0)
        assert not policy.enabled
        assert policy.schedule() == (1.0,)

    def test_validation(self):
        with pytest.raises(ProtocolError):
            RetryPolicy(base_timeout=0.0, max_attempts=1)
        with pytest.raises(ProtocolError):
            RetryPolicy(base_timeout=1.0, max_attempts=-1)
        with pytest.raises(ProtocolError):
            RetryPolicy(base_timeout=1.0, max_attempts=1,
                        backoff_factor=0.5)
        with pytest.raises(ProtocolError):
            RetryPolicy(base_timeout=2.0, max_attempts=1, max_timeout=1.0)
        with pytest.raises(ProtocolError):
            RetryPolicy(base_timeout=1.0, max_attempts=1).timeout_for(-1)


class TestAuthRetransmission:
    def test_lost_response_recovered_by_retry(self):
        """Dropping the first AUTH_RESPONSE volley must cost one retry,
        not the neighbor relationship."""
        cutoff = _establish_time(seed=31, config=RECOVERY) + 1e-6
        injector = _DropAuthResponsesUntil(until=cutoff)
        net = build_event_network(
            RECOVERY, seed=31, faults=FaultPlan([injector], seed=0)
        )
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=30.0)
        assert injector.dropped > 0
        assert len(net.logical_pairs()) == 1
        assert net.trace.counter("retry.auth_retransmits") >= 1
        # The responder re-answered the duplicate AUTH_REQUEST instead
        # of replay-dropping it.
        assert net.trace.counter("retry.auth_response_retransmits") >= 1
        for node in net.nodes:
            for session in node.sessions().values():
                assert session.state is SessionState.ESTABLISHED
                assert not session.monitored
            assert node.monitor_counts() == {}

    def test_exhausted_retries_fail_terminally(self):
        """With the response channel dead forever, the initiator must
        land in FAILED with every monitor released — not wedge."""
        injector = _DropAuthResponsesUntil(until=None)
        net = build_event_network(
            PAIR, seed=31, faults=FaultPlan([injector], seed=0)
        )
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=60.0)
        assert net.trace.counter("retry.sessions_failed") >= 1
        failed = [
            (node, session)
            for node in net.nodes
            for session in node.sessions().values()
            if session.state is SessionState.FAILED
        ]
        assert failed
        for node, session in failed:
            assert not session.monitored
            # The failed side never added the peer as a neighbor.  (The
            # responder may hold a one-sided ESTABLISHED link: it sent
            # its response and cannot know it was swallowed.)
            assert session.peer not in node.logical_neighbors
        # Attempts never exceed the configured maximum.
        for node in net.nodes:
            for session in node.sessions().values():
                assert session.attempts <= PAIR.retry_max_attempts

    def test_gc_reclaims_failed_sessions(self):
        injector = _DropAuthResponsesUntil(until=None)
        net = build_event_network(
            PAIR, seed=31, faults=FaultPlan([injector], seed=0)
        )
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=60.0)
        removed = sum(node.gc_stale_sessions() for node in net.nodes)
        assert removed >= 1
        for node in net.nodes:
            assert all(
                session.state is SessionState.ESTABLISHED
                for session in node.sessions().values()
            )
            assert node.wedged_sessions() == []
            assert node.monitor_counts() == {}

    def test_retries_disabled_restores_fire_and_forget(self):
        """max_attempts=0 must arm no timers: the lost response wedges
        the initiator exactly as the seed behavior did."""
        config = PAIR.replace(retry_max_attempts=0)
        injector = _DropAuthResponsesUntil(until=None)
        net = build_event_network(
            config, seed=31, faults=FaultPlan([injector], seed=0)
        )
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=60.0)
        assert net.trace.counter("retry.auth_retransmits") == 0
        assert net.trace.counter("retry.sessions_failed") == 0
        states = {
            session.state
            for node in net.nodes
            for session in node.sessions().values()
        }
        assert SessionState.AWAIT_AUTH_RESPONSE in states
        # ... and the GC still reclaims the wedge once it goes stale.
        removed = sum(node.gc_stale_sessions() for node in net.nodes)
        assert removed >= 1

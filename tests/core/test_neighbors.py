"""Tests for logical-neighbor maintenance under mobility."""

import pytest

from repro.core.neighbors import NeighborTable
from repro.errors import ConfigurationError
from repro.experiments.scenarios import build_event_network


class TestNeighborTable:
    def test_touch_and_idle(self):
        table = NeighborTable()
        table.touch("a", 1.0)
        assert table.idle_time("a", 5.0) == pytest.approx(4.0)
        assert "a" in table
        assert len(table) == 1

    def test_stale_peers(self):
        table = NeighborTable()
        table.touch("a", 0.0)
        table.touch("b", 9.0)
        assert table.stale_peers(10.0, threshold=5.0) == ["a"]

    def test_touch_refreshes(self):
        table = NeighborTable()
        table.touch("a", 0.0)
        table.touch("a", 9.0)
        assert table.stale_peers(10.0, threshold=5.0) == []

    def test_time_cannot_go_backwards(self):
        table = NeighborTable()
        table.touch("a", 5.0)
        with pytest.raises(ConfigurationError):
            table.touch("a", 4.0)

    def test_unknown_peer(self):
        with pytest.raises(ConfigurationError):
            NeighborTable().last_activity("x")

    def test_forget_idempotent(self):
        table = NeighborTable()
        table.touch("a", 0.0)
        table.forget("a")
        table.forget("a")
        assert "a" not in table


class TestNodeExpiry:
    def _discovered_network(self, small_config, seed=11):
        net = build_event_network(small_config, seed=seed)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=30.0)
        return net

    def test_silent_neighbors_expire(self, small_config):
        net = self._discovered_network(small_config)
        node = next(n for n in net.nodes if n.logical_neighbors)
        before = len(node.logical_neighbors)
        # Let a long silent period pass, then expire.
        net.simulator.call_at(net.simulator.now + 100.0, lambda: None)
        net.simulator.run()
        expired = node.expire_stale_neighbors(threshold=50.0)
        assert len(expired) == before
        assert not node.logical_neighbors
        assert net.trace.counter("neighbors.expired") >= before

    def test_keepalive_prevents_expiry(self, small_config):
        net = self._discovered_network(small_config)
        node = next(n for n in net.nodes if n.logical_neighbors)
        peer_id = next(iter(node.logical_neighbors))
        peer = next(n for n in net.nodes if n.node_id == peer_id)
        # Peer keeps beaconing over the session code.
        for step in range(10):
            net.simulator.call_at(
                net.simulator.now + 10.0 * (step + 1),
                peer.send_keepalive,
                node.node_id,
            )
        net.simulator.run()
        expired = node.expire_stale_neighbors(threshold=50.0)
        assert peer_id not in expired
        assert peer_id in node.logical_neighbors

    def test_maintenance_process(self, small_config):
        net = self._discovered_network(small_config)
        node = next(n for n in net.nodes if n.logical_neighbors)
        node.start_maintenance(threshold=20.0, interval=10.0)
        net.simulator.run(until=net.simulator.now + 100.0)
        assert not node.logical_neighbors

    def test_expired_session_code_released(self, small_config):
        net = self._discovered_network(small_config)
        node = next(n for n in net.nodes if n.logical_neighbors)
        peer_id = next(iter(node.logical_neighbors))
        code = node._session_codes[peer_id].code
        net.simulator.call_at(net.simulator.now + 100.0, lambda: None)
        net.simulator.run()
        node.expire_stale_neighbors(threshold=50.0)
        assert not net.medium.is_listening(node.index, code.code_id)

    def test_send_keepalive_requires_session(self, small_config):
        net = build_event_network(small_config, seed=11)
        assert not net.nodes[0].send_keepalive(net.nodes[1].node_id)

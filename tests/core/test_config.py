"""Unit tests for the configuration (Table I)."""

import pytest

from repro.core.config import JRSNDConfig, default_config
from repro.errors import ConfigurationError


class TestDefaults:
    def test_table1_values(self):
        config = default_config()
        assert config.n_nodes == 2000
        assert config.codes_per_node == 100
        assert config.share_count == 40
        assert config.n_compromised == 20
        assert config.code_length == 512
        assert config.chip_rate == pytest.approx(22e6)
        assert config.rho == pytest.approx(1e-11)
        assert config.mu == 1.0
        assert config.nu == 2
        assert config.type_bits == 5
        assert config.id_bits == 16
        assert config.nonce_bits == 20
        assert config.auth_frame_bits == 160
        assert config.hop_field_bits == 4
        assert config.signature_bits == 672
        assert config.t_key == pytest.approx(11e-3)
        assert config.t_sig == pytest.approx(5.7e-3)
        assert config.t_ver == pytest.approx(35.5e-3)

    def test_field_parameters(self):
        config = default_config()
        assert config.field_width == 5000.0
        assert config.tx_range == 300.0


class TestDerived:
    def test_pool_size(self):
        config = default_config()
        assert config.subsets_per_round == 50
        assert config.pool_size == 5000

    def test_hello_coded_bits(self):
        # l_h = (1 + mu)(l_t + l_id) = 2 * 21 = 42.
        assert default_config().hello_coded_bits == 42

    def test_mac_bits_from_l_f(self):
        # l_f = (1+mu)(l_id + l_n + l_mac) = 160 -> l_mac = 44.
        assert default_config().mac_bits == 44

    def test_expected_degree(self):
        g = default_config().expected_degree
        assert 22 < g < 23  # ~22.6 at the paper's parameters

    def test_replace(self):
        config = default_config().replace(codes_per_node=50)
        assert config.codes_per_node == 50
        assert config.n_nodes == 2000  # untouched

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            default_config().replace(share_count=1)


class TestValidation:
    def test_q_cannot_exceed_n(self):
        with pytest.raises(ConfigurationError):
            JRSNDConfig(n_nodes=10, share_count=5, n_compromised=11)

    def test_l_bounds(self):
        with pytest.raises(ConfigurationError):
            JRSNDConfig(share_count=1)

    def test_tau_range(self):
        with pytest.raises(ConfigurationError):
            JRSNDConfig(tau=0.0)

    def test_tau_one_boundary_accepted(self):
        # The receivers' hit masks use >= tau and a clean block
        # correlates to exactly 1.0: the valid range is (0, 1].
        assert JRSNDConfig(tau=1.0).tau == 1.0

    def test_auth_frame_must_fit_mac(self):
        config = JRSNDConfig(auth_frame_bits=60)
        with pytest.raises(ConfigurationError):
            _ = config.mac_bits

    def test_frozen(self):
        config = default_config()
        with pytest.raises(Exception):
            config.n_nodes = 5


class TestCorrelationBackend:
    def test_default_is_batched(self):
        assert default_config().correlation_backend == "batched"

    def test_all_backends_accepted(self):
        for backend in ("naive", "batched", "fft"):
            config = JRSNDConfig(correlation_backend=backend)
            assert config.correlation_backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            JRSNDConfig(correlation_backend="vectorised")

    def test_replace_validates_backend(self):
        with pytest.raises(ConfigurationError):
            default_config().replace(correlation_backend="")

"""Focused unit tests of JRSNDNode internals.

The end-to-end event tests cover behavior; these pin down the internal
invariants that past bugs lived in — real-time monitor reference
counting, buffered-window acceptance, and session staleness.
"""

import pytest

from repro.core.dndp import DNDPSession, SessionState
from repro.core.messages import Hello
from repro.experiments.scenarios import build_event_network


@pytest.fixture
def net(small_config):
    return build_event_network(small_config, seed=11)


class TestMonitorRefcounting:
    def test_refcount_increments_and_decrements(self, net):
        node = net.nodes[0]
        code = next(iter(node.revocation.active_codes()))
        assert not node._is_realtime(code)
        node._monitor(code)
        node._monitor(code)
        assert node._is_realtime(code)
        node._unmonitor(code)
        assert node._is_realtime(code)  # second session still needs it
        node._unmonitor(code)
        assert not node._is_realtime(code)

    def test_unmonitor_at_zero_is_noop(self, net):
        node = net.nodes[0]
        node._unmonitor(12345)  # never monitored
        assert not node._is_realtime(12345)

    def test_shared_code_across_sessions_survives_one_ending(self, net):
        """The regression that once broke concurrent handshakes: two
        sessions share a pool code; ending one must not stop the
        monitoring the other still needs."""
        node = net.nodes[0]
        code = next(iter(node.revocation.active_codes()))
        node._monitor(code)  # session 1
        node._monitor(code)  # session 2
        node._unmonitor(code)  # session 1 establishes
        assert node._is_realtime(code)


class TestBuildSynchronizer:
    def test_covers_active_codes_with_configured_backend(self, net):
        node = net.nodes[0]
        sync = node.build_synchronizer()
        active = sorted(node.revocation.active_codes())
        assert [c.code_id for c in sync.codes] == active
        # Defaults follow the config: coded HELLO length, batched engine.
        assert sync.message_bits == node.config.hello_coded_bits
        assert sync.engine.block_size > 1

    def test_naive_backend_threads_through(self, small_config):
        from repro.experiments.scenarios import build_event_network

        config = small_config.replace(correlation_backend="naive")
        net = build_event_network(config, seed=11)
        sync = net.nodes[0].build_synchronizer(message_bits=8)
        assert sync.engine.block_size == 1
        assert sync.message_bits == 8

    def test_all_revoked_raises(self, net):
        from repro.errors import ConfigurationError

        node = net.nodes[0]
        for pool_index in list(node.revocation.active_codes()):
            for _ in range(node.revocation.gamma):
                node.revocation.record_invalid_request(pool_index)
        with pytest.raises(ConfigurationError):
            node.build_synchronizer()


class TestBufferedWindowAcceptance:
    def test_copy_inside_window_accepted(self, net):
        node = net.nodes[0]
        schedule = node._schedule
        window = schedule.window(schedule.first_index() + 1)
        mid = (window.buffer_start + window.buffer_end) / 2
        found = node._covering_window(
            window.buffer_start + 1e-6, mid
        )
        assert found is not None
        assert found.index == window.index

    def test_copy_straddling_window_rejected(self, net):
        node = net.nodes[0]
        schedule = node._schedule
        window = schedule.window(schedule.first_index() + 1)
        # Starts before the window opens: cannot be fully buffered.
        assert node._covering_window(
            window.buffer_start - schedule.t_buffer / 2,
            window.buffer_start + schedule.t_buffer / 2,
        ) is None

    def test_copy_in_processing_gap_rejected(self, net):
        node = net.nodes[0]
        schedule = node._schedule
        window = schedule.window(schedule.first_index() + 1)
        # Right after the buffer closes, the node is processing.
        start = window.buffer_end + 1e-6
        assert node._covering_window(start, start + 1e-4) is None


class TestSessionStaleness:
    def test_fresh_pending_not_stale(self, net):
        node = net.nodes[0]
        session = DNDPSession(
            peer=net.nodes[1].node_id,
            initiator=False,
            state=SessionState.CONFIRMING,
            started_at=net.simulator.now,
        )
        assert not node._session_stale(session)

    def test_failed_always_stale(self, net):
        node = net.nodes[0]
        session = DNDPSession(
            peer=net.nodes[1].node_id,
            initiator=False,
            state=SessionState.FAILED,
            started_at=net.simulator.now,
        )
        assert node._session_stale(session)

    def test_old_pending_stale(self, net):
        node = net.nodes[0]
        session = DNDPSession(
            peer=net.nodes[1].node_id,
            initiator=True,
            state=SessionState.AWAIT_AUTH_RESPONSE,
            started_at=0.0,
        )
        net.simulator.call_at(1000.0, lambda: None)
        net.simulator.run()
        assert node._session_stale(session)

    def test_established_never_stale(self, net):
        node = net.nodes[0]
        session = DNDPSession(
            peer=net.nodes[1].node_id,
            initiator=True,
            state=SessionState.ESTABLISHED,
            started_at=0.0,
        )
        net.simulator.call_at(1000.0, lambda: None)
        net.simulator.run()
        assert not node._session_stale(session)


class TestDispatchGuards:
    def test_hello_from_self_ignored(self, net):
        node = net.nodes[0]
        node._on_hello(Hello(node.node_id), pool_index=0, sender=0)
        assert not node._sessions

    def test_hello_from_established_peer_ignored(self, net):
        node = net.nodes[0]
        peer = net.nodes[1].node_id
        node._logical[peer] = 1
        before = dict(node._sessions)
        node._on_hello(Hello(peer), pool_index=0, sender=1)
        assert node._sessions == before

    def test_revoked_code_deliveries_dropped(self, net, small_config):
        node = net.nodes[0]
        code = next(iter(node.revocation.active_codes()))
        for _ in range(small_config.revocation_gamma):
            node.revocation.record_invalid_request(code)
        assert code in node.revocation.revoked

        class FakeTx:
            code_key = code
            sender = 1
            start = 0.0
            end = 1e-4
            frame = Hello(net.nodes[1].node_id)

        node._on_pool_delivery(FakeTx())
        assert not node._sessions

"""Reference vs vectorized M-NDP closure equivalence."""

import random

import pytest

from repro.core.mndp import LogicalGraph, MNDPSampler
from repro.errors import ConfigurationError


def _random_instance(rnd):
    n = rnd.randrange(5, 35)
    graph = LogicalGraph(n)
    for _ in range(rnd.randrange(0, 3 * n)):
        a, b = rnd.sample(range(n), 2)
        graph.add_link(a, b)
    pairs = sorted(
        {
            tuple(sorted(rnd.sample(range(n), 2)))
            for _ in range(rnd.randrange(1, 25))
        }
    )
    return n, graph, pairs


class TestBackendEquivalence:
    @pytest.mark.parametrize("nu", [1, 2, 3, 5])
    def test_one_round_identical_dicts(self, nu):
        rnd = random.Random(500 + nu)
        for _ in range(40):
            n, graph, pairs = _random_instance(rnd)
            exclude = rnd.sample(range(n), rnd.randrange(0, 3))
            reference = MNDPSampler(
                nu, exclude=exclude, backend="reference"
            )
            vectorized = MNDPSampler(
                nu, exclude=exclude, backend="vectorized"
            )
            pending = [p for p in pairs if not graph.has_link(*p)]
            want = reference._one_round(pending, graph)
            got = vectorized._one_round(pending, graph)
            # Same pairs, same hop counts, same (pending) order — the
            # order feeds the mndp.recovery_hops histogram.
            assert list(want.items()) == list(got.items())

    def test_discover_identical_over_rounds(self):
        rnd = random.Random(900)
        for _ in range(30):
            n, graph, pairs = _random_instance(rnd)
            rounds = rnd.randrange(1, 4)
            want = MNDPSampler(2, backend="reference").discover(
                pairs, graph, rounds=rounds
            )
            got = MNDPSampler(2, backend="vectorized").discover(
                pairs, graph, rounds=rounds
            )
            assert want == got

    def test_discover_leaves_caller_graph_untouched(self):
        graph = LogicalGraph(4)
        graph.add_link(0, 1)
        graph.add_link(1, 2)
        edges_before = graph.edges()
        recovered = MNDPSampler(2).discover(
            [(0, 2), (0, 3)], graph, rounds=3
        )
        assert recovered == {(0, 2)}
        assert graph.edges() == edges_before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            MNDPSampler(2, backend="gpu")

    def test_backend_property(self):
        assert MNDPSampler(2).backend == "vectorized"
        assert MNDPSampler(2, backend="reference").backend == "reference"

    def test_discover_with_excludes_and_duplicates(self):
        # Duplicate and reversed pairs must resolve once (dict-key
        # semantics of the reference), and excluded nodes must neither
        # relay nor discover.
        rnd = random.Random(77)
        for _ in range(25):
            n, graph, pairs = _random_instance(rnd)
            noisy = pairs + [(b, a) for a, b in pairs[::2]] + pairs[:3]
            exclude = rnd.sample(range(n), rnd.randrange(0, 4))
            want = MNDPSampler(
                3, exclude=exclude, backend="reference"
            ).discover(noisy, graph, rounds=2)
            got = MNDPSampler(
                3, exclude=exclude, backend="vectorized"
            ).discover(noisy, graph, rounds=2)
            assert want == got

    def test_discover_metrics_identical(self):
        from repro.obs import MetricsRegistry, installed

        rnd = random.Random(4242)
        for _ in range(10):
            n, graph, pairs = _random_instance(rnd)
            exclude = rnd.sample(range(n), rnd.randrange(0, 3))
            snapshots = {}
            for backend in ("reference", "vectorized"):
                registry = MetricsRegistry()
                with installed(registry):
                    MNDPSampler(
                        3, exclude=exclude, backend=backend
                    ).discover(pairs, graph, rounds=3)
                snapshots[backend] = registry.snapshot()
            want, got = snapshots["reference"], snapshots["vectorized"]
            assert want.counters == got.counters
            assert want.histograms == got.histograms


class TestLogicalGraphBulk:
    def test_add_links_matches_add_link(self):
        import numpy as np

        one = LogicalGraph(6)
        for a, b in [(0, 1), (1, 2), (4, 5)]:
            one.add_link(a, b)
        bulk = LogicalGraph(6)
        bulk.add_links(np.array([[0, 1], [1, 2], [4, 5]]))
        assert bulk.edges() == one.edges()
        assert bulk.n_edges == 3
        assert bulk.has_link(1, 2)
        assert bulk.neighbors(1) == {0, 2}

    def test_add_links_accepts_iterables_and_empty(self):
        graph = LogicalGraph(4)
        graph.add_links([(0, 1), (2, 3)])
        graph.add_links([])
        assert graph.edges() == {(0, 1), (2, 3)}

    def test_add_links_rejects_self_loops(self):
        graph = LogicalGraph(4)
        with pytest.raises(ConfigurationError):
            graph.add_links([(0, 1), (2, 2)])
        # The rejected batch left no partial state behind.
        assert graph.edges() == set()

    def test_edge_array_covers_both_insert_paths(self):
        import numpy as np

        graph = LogicalGraph(5)
        graph.add_link(0, 1)
        graph.add_links(np.array([[1, 2], [3, 4]]))
        recorded = {
            tuple(sorted(edge)) for edge in graph.edge_array().tolist()
        }
        assert recorded == {(0, 1), (1, 2), (3, 4)}

    def test_copy_preserves_buffered_links(self):
        graph = LogicalGraph(4)
        graph.add_links([(0, 1)])
        clone = graph.copy()
        clone.add_links([(2, 3)])
        assert clone.edges() == {(0, 1), (2, 3)}
        assert graph.edges() == {(0, 1)}

"""Unit tests for bit-level message serialization."""

import pytest

from repro.core.config import default_config
from repro.core.messages import (
    AuthRequest,
    AuthResponse,
    Confirm,
    Hello,
    MNDPExtension,
    MNDPRequest,
    MNDPResponse,
)
from repro.core.wire import WireCodec
from repro.crypto.identity import TrustedAuthority
from repro.crypto.mac import MessageAuthenticator
from repro.crypto.signatures import SignatureScheme
from repro.dsss.frame import MessageType
from repro.errors import DecodeError


@pytest.fixture
def setup():
    config = default_config()
    authority = TrustedAuthority(b"m", id_bits=config.id_bits)
    scheme = SignatureScheme(authority.public_parameters())
    ids = [authority.make_id(i) for i in range(1, 8)]
    keys = [authority.issue_private_key(node) for node in ids]
    return config, authority, scheme, ids, keys


class TestBeacons:
    def test_hello_roundtrip(self, setup):
        config, _, _, ids, _ = setup
        codec = WireCodec(config)
        frame = codec.encode(Hello(ids[0]))
        assert frame.message_type is MessageType.HELLO
        assert frame.payload.size == config.id_bits
        assert codec.decode(frame) == Hello(ids[0])

    def test_confirm_roundtrip(self, setup):
        config, _, _, ids, _ = setup
        codec = WireCodec(config)
        assert codec.decode(codec.encode(Confirm(ids[3]))) == Confirm(
            ids[3]
        )


class TestAuthMessages:
    def test_roundtrip_and_mac_still_verifies(self, setup):
        config, _, _, ids, keys = setup
        codec = WireCodec(config)
        shared = keys[0].shared_key(ids[1])
        mac = MessageAuthenticator(shared, config.mac_bits)
        from repro.core.messages import nonce_bytes

        nonce = 123456
        message = AuthRequest(
            sender=ids[0],
            nonce=nonce,
            mac_tag=mac.tag(ids[0].to_bytes(), nonce_bytes(nonce)),
        )
        decoded = codec.decode(codec.encode(message))
        assert decoded == message
        assert mac.verify(decoded.mac_tag, *decoded.mac_input())

    def test_response_roundtrip(self, setup):
        config, _, _, ids, keys = setup
        codec = WireCodec(config)
        mac = MessageAuthenticator(
            keys[1].shared_key(ids[0]), config.mac_bits
        )
        from repro.core.messages import nonce_bytes

        message = AuthResponse(
            sender=ids[1], nonce=7,
            mac_tag=mac.tag(ids[1].to_bytes(), nonce_bytes(7)),
        )
        assert codec.decode(codec.encode(message)) == message

    def test_payload_width_matches_paper(self, setup):
        config, _, _, ids, _ = setup
        codec = WireCodec(config)
        frame = codec.encode(
            AuthRequest(sender=ids[0], nonce=1, mac_tag=b"\x00" * 6)
        )
        # l_id + l_n + l_mac = 16 + 20 + 44 = 80 plain payload bits.
        assert frame.payload.size == 80


def _signed_request(config, scheme, ids, keys, position=None, extend=False):
    request = MNDPRequest(
        source=ids[0],
        source_neighbors=(ids[1], ids[2], ids[3]),
        nonce=99,
        hop_budget=3,
        source_signature=None,
        source_position=position,
    )
    signature = scheme.sign(keys[0], request.source_signed_bytes())
    request = MNDPRequest(
        source=request.source,
        source_neighbors=request.source_neighbors,
        nonce=request.nonce,
        hop_budget=request.hop_budget,
        source_signature=signature,
        source_position=position,
    )
    if extend:
        unsigned = MNDPExtension(ids[1], (ids[0], ids[4]), None)
        ext_sig = scheme.sign(
            keys[1], unsigned.signed_bytes(request.source_signed_bytes())
        )
        request = request.extended(
            MNDPExtension(ids[1], (ids[0], ids[4]), ext_sig)
        )
    return request


class TestMNDPMessages:
    def test_request_roundtrip(self, setup):
        config, _, scheme, ids, keys = setup
        codec = WireCodec(config)
        request = _signed_request(config, scheme, ids, keys, extend=True)
        decoded = codec.decode(codec.encode(request))
        assert decoded == request

    def test_request_signature_verifies_after_roundtrip(self, setup):
        config, _, scheme, ids, keys = setup
        from repro.core.mndp import validate_request_chain

        codec = WireCodec(config)
        request = _signed_request(config, scheme, ids, keys, extend=True)
        decoded = codec.decode(codec.encode(request))
        assert validate_request_chain(decoded, scheme)

    def test_position_roundtrip(self, setup):
        config, _, scheme, ids, keys = setup
        codec = WireCodec(config)
        request = _signed_request(
            config, scheme, ids, keys, position=(123.45, 67.89)
        )
        decoded = codec.decode(codec.encode(request))
        assert decoded.source_position == pytest.approx((123.45, 67.89))

    def test_response_roundtrip(self, setup):
        config, _, scheme, ids, keys = setup
        codec = WireCodec(config)
        response = MNDPResponse(
            source=ids[0], via=ids[1], responder=ids[2],
            responder_neighbors=(ids[1], ids[5]),
            nonce=41, hop_budget=3, responder_signature=None,
        )
        signature = scheme.sign(keys[2], response.responder_signed_bytes())
        response = MNDPResponse(
            source=response.source, via=response.via,
            responder=response.responder,
            responder_neighbors=response.responder_neighbors,
            nonce=response.nonce, hop_budget=response.hop_budget,
            responder_signature=signature,
        )
        decoded = codec.decode(codec.encode(response))
        assert decoded == response

    def test_tampered_signature_padding_detected(self, setup):
        config, _, scheme, ids, keys = setup
        codec = WireCodec(config)
        request = _signed_request(config, scheme, ids, keys)
        frame = codec.encode(request)
        payload = frame.payload.copy()
        # Flip a bit inside the signature padding region (past the
        # 256-bit tag, before the end of l_sig).
        sig_start = (
            config.id_bits          # source
            + 8 + 3 * config.id_bits  # neighbor list
            + config.nonce_bits
            + config.hop_field_bits
            + 1                      # position flag
        )
        pad_bit = sig_start + 300    # inside the padding
        payload[pad_bit] ^= 1
        from repro.dsss.frame import Frame

        with pytest.raises(DecodeError):
            codec.decode(Frame(frame.message_type, payload))

    def test_truncated_payload_rejected(self, setup):
        config, _, scheme, ids, keys = setup
        codec = WireCodec(config)
        frame = codec.encode(_signed_request(config, scheme, ids, keys))
        from repro.dsss.frame import Frame

        clipped = Frame(frame.message_type, frame.payload[:-40])
        with pytest.raises(DecodeError):
            codec.decode(clipped)


class TestOverChips:
    def test_mndp_request_survives_the_air(self, setup, rng):
        """A signed M-NDP request: bits -> ECC -> chips -> noisy
        channel -> synchronizer -> ECC -> bits -> verified message."""
        from repro.core.mndp import validate_request_chain
        from repro.dsss.channel import ChipChannel
        from repro.dsss.frame import FrameCodec
        from repro.dsss.spread_code import SpreadCode
        from repro.dsss.synchronizer import SlidingWindowSynchronizer

        config, _, scheme, ids, keys = setup
        wire = WireCodec(config)
        frame = wire.encode(
            _signed_request(config, scheme, ids, keys, extend=True)
        )
        frame_codec = FrameCodec(mu=config.mu)
        coded = frame_codec.encode(frame)
        code = SpreadCode.random(config.code_length, rng)
        channel = ChipChannel(noise_std=0.2)
        channel.add_message(coded, code, offset=321)
        buffer = channel.render(rng=rng)
        sync = SlidingWindowSynchronizer(
            [code], tau=config.tau, message_bits=int(coded.size)
        )
        decoded_frame = sync.scan_validated(
            buffer,
            lambda res: frame_codec.decode(
                res.bits, payload_bits=int(frame.payload.size)
            ),
        )
        assert decoded_frame is not None
        message = wire.decode(decoded_frame)
        assert validate_request_chain(message, scheme)
        assert message.source == ids[0]

"""Event-driven latency vs Theorem 2.

The event simulation implements the buffer/process schedule mechanics
directly (covered windows, processing delays, crypto costs), so its
measured handshake latency should reproduce Theorem 2's prediction —
independently derived from the same schedule — to first order, and
scale the same way with ``m``.
"""

import numpy as np
import pytest

from repro.analysis.dndp_theory import dndp_expected_latency
from repro.core.config import JRSNDConfig
from repro.experiments.scenarios import build_event_network


def _two_node_config(m):
    return JRSNDConfig(
        n_nodes=2,
        codes_per_node=m,
        share_count=2,
        n_compromised=0,
        field_width=100.0,
        field_height=100.0,
        tx_range=300.0,
        rho=1e-9,
    )


def _measure_latencies(m, seeds):
    latencies = []
    for seed in seeds:
        config = _two_node_config(m)
        net = build_event_network(config, seed=seed)
        initiator = net.nodes[0]
        initiator.initiate_dndp()
        net.simulator.run(until=10.0)
        peer = net.nodes[1].node_id
        session = initiator.session_with(peer)
        if session is not None and session.established_at is not None:
            # Latency from broadcast start (t = 0) at the initiator.
            latencies.append(session.established_at)
    return latencies


class TestTheorem2Agreement:
    def test_mean_latency_first_order(self):
        latencies = _measure_latencies(m=3, seeds=range(25))
        assert len(latencies) >= 20  # nearly every run must complete
        measured = float(np.mean(latencies))
        predicted = dndp_expected_latency(_two_node_config(3))
        # The event model and the closed form share the schedule
        # structure but differ in second-order details (discrete
        # window alignment, confirm repetition); first-order agreement:
        assert 0.3 * predicted < measured < 2.0 * predicted

    def test_latency_grows_with_m(self):
        small = np.mean(_measure_latencies(m=2, seeds=range(12)))
        large = np.mean(_measure_latencies(m=6, seeds=range(12)))
        # Theorem 2's schedule term grows ~quadratically in m.
        assert large > 2.0 * small

    def test_latency_positive_and_bounded(self):
        latencies = _measure_latencies(m=3, seeds=range(8))
        for latency in latencies:
            assert 0 < latency < 5.0

"""Unit tests for the M-NDP graph model and chain validation."""

import pytest

from repro.core.messages import MNDPExtension, MNDPRequest, MNDPResponse
from repro.core.mndp import (
    LogicalGraph,
    MNDPSampler,
    validate_request_chain,
    validate_response_chain,
)
from repro.crypto.identity import TrustedAuthority
from repro.crypto.signatures import SignatureScheme
from repro.errors import ConfigurationError


class TestLogicalGraph:
    def test_links(self):
        graph = LogicalGraph(5)
        graph.add_link(0, 1)
        assert graph.has_link(0, 1)
        assert graph.has_link(1, 0)
        assert not graph.has_link(0, 2)
        assert graph.n_edges == 1

    def test_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            LogicalGraph(3).add_link(1, 1)

    def test_neighbors(self):
        graph = LogicalGraph(4)
        graph.add_link(0, 1)
        graph.add_link(0, 2)
        assert graph.neighbors(0) == {1, 2}

    def test_within_hops(self):
        graph = LogicalGraph(5)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            graph.add_link(a, b)
        reach = graph.within_hops(0, 2)
        assert reach == {0: 0, 1: 1, 2: 2}

    def test_hop_distance(self):
        graph = LogicalGraph(4)
        graph.add_link(0, 1)
        graph.add_link(1, 2)
        assert graph.hop_distance(0, 2, 3) == 2
        assert graph.hop_distance(0, 3, 3) == 0  # unreachable

    def test_copy_independent(self):
        graph = LogicalGraph(3)
        graph.add_link(0, 1)
        clone = graph.copy()
        clone.add_link(1, 2)
        assert not graph.has_link(1, 2)


class TestMNDPSampler:
    def test_two_hop_recovery(self):
        """A-B fail D-NDP but share logical neighbor C."""
        logical = LogicalGraph(3)
        logical.add_link(0, 2)
        logical.add_link(1, 2)
        sampler = MNDPSampler(nu=2)
        discovered = sampler.discover([(0, 1)], logical)
        assert discovered == {(0, 1)}

    def test_respects_hop_budget(self):
        logical = LogicalGraph(4)
        # path 0-2-3-1 has 3 hops
        for a, b in [(0, 2), (2, 3), (3, 1)]:
            logical.add_link(a, b)
        assert MNDPSampler(nu=2).discover([(0, 1)], logical) == set()
        assert MNDPSampler(nu=3).discover([(0, 1)], logical) == {(0, 1)}

    def test_already_logical_pairs_skipped(self):
        logical = LogicalGraph(2)
        logical.add_link(0, 1)
        assert MNDPSampler(nu=2).discover([(0, 1)], logical) == set()

    def test_single_round_uses_initial_graph(self):
        """rounds=1 matches Theorem 3: new links don't cascade."""
        logical = LogicalGraph(4)
        logical.add_link(0, 2)
        logical.add_link(1, 2)
        logical.add_link(3, 1)
        # (0,1) is 2-hop recoverable now; (0,3) becomes 2-hop only
        # after (0,1) exists.
        pairs = [(0, 1), (0, 3)]
        one_round = MNDPSampler(nu=2).discover(pairs, logical, rounds=1)
        assert one_round == {(0, 1)}

    def test_multi_round_cascades(self):
        logical = LogicalGraph(4)
        logical.add_link(0, 2)
        logical.add_link(1, 2)
        logical.add_link(3, 1)
        pairs = [(0, 1), (0, 3)]
        two_rounds = MNDPSampler(nu=2).discover(pairs, logical, rounds=2)
        assert two_rounds == {(0, 1), (0, 3)}

    def test_excluded_relays(self):
        logical = LogicalGraph(3)
        logical.add_link(0, 2)
        logical.add_link(1, 2)
        sampler = MNDPSampler(nu=2, exclude=[2])
        assert sampler.discover([(0, 1)], logical) == set()

    def test_excluded_endpoint(self):
        logical = LogicalGraph(3)
        logical.add_link(0, 2)
        logical.add_link(1, 2)
        sampler = MNDPSampler(nu=2, exclude=[1])
        assert sampler.discover([(0, 1)], logical) == set()

    def test_rejects_bad_nu(self):
        with pytest.raises(ConfigurationError):
            MNDPSampler(nu=0)


@pytest.fixture
def chain_setup():
    authority = TrustedAuthority(b"m")
    scheme = SignatureScheme(authority.public_parameters())
    ids = [authority.make_id(i) for i in range(1, 5)]
    keys = [authority.issue_private_key(node) for node in ids]
    return authority, scheme, ids, keys


def _build_request(scheme, ids, keys, tamper=None):
    a, c, b, d = ids
    request = MNDPRequest(
        source=a,
        source_neighbors=(c, d),
        nonce=5,
        hop_budget=3,
        source_signature=None,
    )
    sig_a = scheme.sign(keys[0], request.source_signed_bytes())
    request = MNDPRequest(
        source=a, source_neighbors=(c, d), nonce=5, hop_budget=3,
        source_signature=sig_a,
    )
    unsigned = MNDPExtension(c, (a, b), None)
    sig_c = scheme.sign(
        keys[1], unsigned.signed_bytes(request.source_signed_bytes())
    )
    return request.extended(MNDPExtension(c, (a, b), sig_c))


class TestRequestChainValidation:
    def test_valid_chain(self, chain_setup):
        _, scheme, ids, keys = chain_setup
        request = _build_request(scheme, ids, keys)
        assert validate_request_chain(request, scheme)

    def test_bad_source_signature(self, chain_setup):
        _, scheme, ids, keys = chain_setup
        request = _build_request(scheme, ids, keys)
        forged = MNDPRequest(
            source=request.source,
            source_neighbors=request.source_neighbors,
            nonce=request.nonce + 1,  # signature no longer matches
            hop_budget=request.hop_budget,
            source_signature=request.source_signature,
            extensions=request.extensions,
        )
        assert not validate_request_chain(forged, scheme)

    def test_extension_not_in_previous_neighbors(self, chain_setup):
        """A relay that is not the previous hop's neighbor is rejected."""
        _, scheme, ids, keys = chain_setup
        a, c, b, d = ids
        request = MNDPRequest(
            source=a,
            source_neighbors=(d,),  # c NOT a neighbor of a
            nonce=5,
            hop_budget=3,
            source_signature=None,
        )
        sig_a = scheme.sign(keys[0], request.source_signed_bytes())
        request = MNDPRequest(
            source=a, source_neighbors=(d,), nonce=5, hop_budget=3,
            source_signature=sig_a,
        )
        unsigned = MNDPExtension(c, (a, b), None)
        sig_c = scheme.sign(
            keys[1], unsigned.signed_bytes(request.source_signed_bytes())
        )
        bad = request.extended(MNDPExtension(c, (a, b), sig_c))
        assert not validate_request_chain(bad, scheme)

    def test_tampered_extension_neighbors(self, chain_setup):
        _, scheme, ids, keys = chain_setup
        request = _build_request(scheme, ids, keys)
        original = request.extensions[0]
        tampered = MNDPRequest(
            source=request.source,
            source_neighbors=request.source_neighbors,
            nonce=request.nonce,
            hop_budget=request.hop_budget,
            source_signature=request.source_signature,
            extensions=(
                MNDPExtension(
                    original.node,
                    original.neighbors + (ids[3],),
                    original.signature,
                ),
            ),
        )
        assert not validate_request_chain(tampered, scheme)


class TestResponseChainValidation:
    def test_valid_response(self, chain_setup):
        _, scheme, ids, keys = chain_setup
        a, c, b, _ = ids
        response = MNDPResponse(
            source=a, via=c, responder=b,
            responder_neighbors=(c,), nonce=8, hop_budget=2,
            responder_signature=None,
        )
        sig = scheme.sign(keys[2], response.responder_signed_bytes())
        response = MNDPResponse(
            source=a, via=c, responder=b,
            responder_neighbors=(c,), nonce=8, hop_budget=2,
            responder_signature=sig,
        )
        assert validate_response_chain(response, scheme)

    def test_forged_responder(self, chain_setup):
        _, scheme, ids, keys = chain_setup
        a, c, b, d = ids
        response = MNDPResponse(
            source=a, via=c, responder=b,
            responder_neighbors=(c,), nonce=8, hop_budget=2,
            responder_signature=None,
        )
        # d signs but claims to be b.
        sig = scheme.sign(keys[3], response.responder_signed_bytes())
        from repro.crypto.signatures import IdentitySignature
        forged = MNDPResponse(
            source=a, via=c, responder=b,
            responder_neighbors=(c,), nonce=8, hop_budget=2,
            responder_signature=IdentitySignature(b, sig.tag),
        )
        assert not validate_response_chain(forged, scheme)

"""Property-based equivalence of the correlation backends.

Whatever random buffer the channel produces — empty, noise-only,
carrying messages at arbitrary offsets, or jammed — every backend must
return exactly the same SyncResult sequence as the naive per-position
reference, work counter included.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dsss.channel import ChipChannel
from repro.dsss.engine import CORRELATION_BACKENDS
from repro.dsss.spread_code import SpreadCode
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.utils.rng import derive_rng


def _scenario(seed, n_codes, code_length, message_bits, offset_positions,
              noise, jam):
    """Build a deterministic buffer + code set from drawn parameters."""
    rng = derive_rng(seed, "sync-props")
    codes = [
        SpreadCode.random(code_length, rng, code_id=i)
        for i in range(n_codes)
    ]
    channel = ChipChannel(noise_std=noise)
    for k, slot in enumerate(offset_positions):
        bits = rng.integers(0, 2, size=message_bits, dtype=np.int8)
        channel.add_message(
            bits, codes[k % n_codes], offset=int(slot)
        )
    if jam:
        channel.add_jamming(
            codes[0], offset=0, n_bits=message_bits, rng=rng,
            amplitude=1.5,
        )
    length = max(
        (message_bits + 2) * code_length,
        max((int(s) for s in offset_positions), default=0)
        + message_bits * code_length,
    )
    return codes, channel.render(length=length, rng=rng)


class TestBackendEquivalenceProps:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_codes=st.integers(min_value=1, max_value=3),
        code_length=st.sampled_from([16, 32, 64]),
        message_bits=st.integers(min_value=2, max_value=5),
        offset_positions=st.lists(
            st.integers(min_value=0, max_value=400), max_size=3
        ),
        noise=st.sampled_from([0.0, 0.4, 0.8]),
        jam=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_all_identical_across_backends(
        self, seed, n_codes, code_length, message_bits, offset_positions,
        noise, jam,
    ):
        codes, buffer = _scenario(
            seed, n_codes, code_length, message_bits, offset_positions,
            noise, jam,
        )
        # Small N makes cross-correlations large relative to tau, so
        # spurious hits and failed confirmations are frequent — exactly
        # the paths where batched accounting could drift.
        results = {}
        for backend in CORRELATION_BACKENDS:
            sync = SlidingWindowSynchronizer(
                codes,
                tau=0.3,
                message_bits=message_bits,
                confirm_blocks=2,
                backend=backend,
            )
            results[backend] = sync.scan_all(buffer)
        assert results["batched"] == results["naive"]
        assert results["fft"] == results["naive"]

"""Backend-equivalence properties: naive vs vectorized Reed-Solomon.

The vectorized backend must be *bit-identical* to the scalar reference:
same codewords, same decoded symbols for every errors+erasures pattern
within capability (including the exact boundary ``2e + f = n - k``),
and the same :class:`~repro.errors.EccDecodeError` outcome beyond it.
The :class:`~repro.ecc.codec.ExpansionCodec` sweep covers the chunking
boundaries (one symbol, exactly ``_max_data_symbols``, one past it, and
multiple chunks).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.codec import ExpansionCodec
from repro.ecc.reed_solomon import ReedSolomonCodec
from repro.errors import EccDecodeError

symbol = st.integers(min_value=0, max_value=255)


@st.composite
def backend_case(draw):
    """A message plus a corruption pattern, possibly over capability."""
    n_parity = draw(st.integers(min_value=2, max_value=16))
    k = draw(st.integers(min_value=1, max_value=100))
    message = draw(st.lists(symbol, min_size=k, max_size=k))
    n = k + n_parity
    e = draw(st.integers(min_value=0, max_value=n_parity // 2 + 1))
    f = draw(
        st.integers(min_value=0, max_value=min(n_parity + 1, n - e))
    )
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=e + f,
            max_size=e + f,
            unique=True,
        )
    )
    flips = draw(
        st.lists(
            st.integers(min_value=1, max_value=255),
            min_size=e + f,
            max_size=e + f,
        )
    )
    return n_parity, message, positions[:e], positions[e:], flips


class TestReedSolomonBackendEquivalence:
    @given(backend_case())
    @settings(max_examples=150, deadline=None)
    def test_decode_agrees_including_failures(self, case):
        n_parity, message, error_pos, erasure_pos, flips = case
        naive = ReedSolomonCodec(n_parity, backend="naive")
        vectorized = ReedSolomonCodec(n_parity, backend="vectorized")
        codeword = naive.encode(message)
        assert vectorized.encode(message) == codeword
        for position, flip in zip(error_pos + erasure_pos, flips):
            codeword[position] ^= flip
        try:
            want = naive.decode(codeword, erasure_pos)
        except EccDecodeError:
            with pytest.raises(EccDecodeError):
                vectorized.decode(codeword, erasure_pos)
        else:
            assert vectorized.decode(codeword, erasure_pos) == want

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_decode_batch_agrees(self, n_parity, k, batch, seed):
        rng = np.random.default_rng(seed)
        naive = ReedSolomonCodec(n_parity, backend="naive")
        vectorized = ReedSolomonCodec(n_parity, backend="vectorized")
        messages = rng.integers(
            0, 256, size=(batch, k), dtype=np.uint8
        ).tolist()
        words = naive.encode_batch(messages)
        assert vectorized.encode_batch(messages) == words
        n = k + n_parity
        erasure_lists = []
        for word in words:
            f = int(rng.integers(0, n_parity + 1))
            hit = rng.choice(n, size=f, replace=False)
            for position in hit:
                word[int(position)] ^= int(rng.integers(1, 256))
            erasure_lists.append([int(p) for p in hit])
        want = naive.decode_batch(words, erasure_lists)
        assert vectorized.decode_batch(words, erasure_lists) == want
        assert want == messages

    def test_exact_capability_boundary(self):
        # 2e + f == n - k exactly, the deepest fold depth.
        n_parity = 6
        message = list(range(20))
        for e, f in ((0, 6), (1, 4), (2, 2), (3, 0)):
            naive = ReedSolomonCodec(n_parity, backend="naive")
            vectorized = ReedSolomonCodec(n_parity, backend="vectorized")
            word = naive.encode(message)
            positions = list(range(e + f))
            for position in positions:
                word[position] ^= 0xA5
            erasures = positions[e:]
            assert (
                naive.decode(list(word), erasures)
                == vectorized.decode(list(word), erasures)
                == message
            )


class TestExpansionCodecBackendEquivalence:
    @pytest.mark.parametrize("mu", [0.5, 1.0])
    @pytest.mark.parametrize("case", ["clean", "erasures"])
    def test_chunk_boundaries(self, mu, case):
        naive = ExpansionCodec(mu, backend="naive")
        vectorized = ExpansionCodec(mu, backend="vectorized")
        max_symbols = naive._max_data_symbols
        rng = np.random.default_rng(42)
        for bits in (1, 8, 8 * max_symbols, 8 * max_symbols + 1,
                     8 * (2 * max_symbols) + 13):
            plain = rng.integers(0, 2, size=bits, dtype=np.int8)
            coded_naive = naive.encode(plain)
            coded_vec = vectorized.encode(plain)
            assert np.array_equal(coded_naive, coded_vec)
            decisions = [int(b) for b in coded_naive]
            if case == "erasures":
                # Erase one whole symbol's worth of leading bits; this
                # stays within every chunk's parity budget.
                for position in range(min(8, len(decisions))):
                    decisions[position] = None
            got_naive = naive.decode(decisions, bits)
            got_vec = vectorized.decode(decisions, bits)
            assert np.array_equal(got_naive, got_vec)
            assert np.array_equal(got_naive, plain)

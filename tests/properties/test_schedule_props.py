"""Property-based tests for the buffer/process schedule coverage claim.

The choice of r in Section V-B rests on one claim: a transmission of
duration t_p + t_b fully covers some buffered window *at every schedule
phase and start time*.  Hypothesis sweeps the space.
"""

from hypothesis import given, settings, strategies as st

from repro.dsss.receiver import BufferSchedule


@st.composite
def schedules(draw):
    t_b = draw(st.floats(min_value=1e-4, max_value=10.0,
                         allow_nan=False, allow_infinity=False))
    gap = draw(st.floats(min_value=1.0, max_value=200.0,
                         allow_nan=False, allow_infinity=False))
    phase_fraction = draw(st.floats(min_value=0.0, max_value=0.999))
    t_p = t_b * gap
    return BufferSchedule(t_b, t_p, phase=phase_fraction * t_p)


class TestCoverageProperty:
    @given(
        schedules(),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_required_duration_always_covers(self, schedule, start):
        duration = schedule.required_tx_duration()
        window = schedule.first_covered_window(start, duration)
        assert window is not None
        assert window.buffer_start >= start - 1e-9 * max(1.0, start)
        assert window.buffer_end <= start + duration + 1e-9 * max(
            1.0, start + duration
        )

    @given(schedules())
    @settings(max_examples=100, deadline=None)
    def test_windows_never_overlap(self, schedule):
        first = schedule.first_index()
        previous = schedule.window(first)
        for index in range(first + 1, first + 6):
            window = schedule.window(index)
            assert window.buffer_start >= previous.buffer_end - 1e-12
            previous = window

    @given(schedules())
    @settings(max_examples=100, deadline=None)
    def test_processing_follows_buffering(self, schedule):
        first = schedule.first_index()
        for index in range(first, first + 4):
            window = schedule.window(index)
            assert window.processing_done > window.buffer_end
            assert window.duration > 0

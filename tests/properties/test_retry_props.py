"""Property-based tests for the AUTH retry schedule.

The hardened handshake rests on three claims: the exponential-backoff
schedule is always bounded by ``max_timeout``, the number of attempts
never exceeds the configured maximum, and — most importantly — enabling
the retry machinery does not perturb one bit of a fault-free run
relative to the fire-and-forget seed behavior.  Hypothesis sweeps the
policy space; the identity claim is checked against full simulations.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import JRSNDConfig
from repro.core.dndp import RetryPolicy
from repro.experiments.scenarios import build_event_network

policies = st.builds(
    RetryPolicy,
    base_timeout=st.floats(min_value=1e-4, max_value=100.0,
                           allow_nan=False, allow_infinity=False),
    max_attempts=st.integers(min_value=0, max_value=8),
    backoff_factor=st.floats(min_value=1.0, max_value=8.0,
                             allow_nan=False, allow_infinity=False),
)


class TestScheduleProperties:
    @given(policies)
    @settings(max_examples=200, deadline=None)
    def test_schedule_shape_and_bounds(self, policy):
        schedule = policy.schedule()
        # One timeout per attempt: the initial send plus each retry.
        assert len(schedule) == policy.max_attempts + 1
        assert all(0.0 < t <= policy.max_timeout for t in schedule)
        assert schedule[0] == min(policy.base_timeout, policy.max_timeout)

    @given(policies)
    @settings(max_examples=200, deadline=None)
    def test_backoff_is_monotone_until_the_cap(self, policy):
        schedule = policy.schedule()
        for earlier, later in zip(schedule, schedule[1:]):
            assert later >= earlier - 1e-12
        assert policy.total_budget == sum(schedule)

    @given(policies, st.integers(min_value=0, max_value=32))
    @settings(max_examples=200, deadline=None)
    def test_timeout_for_any_attempt_is_capped(self, policy, attempt):
        assert 0.0 < policy.timeout_for(attempt) <= policy.max_timeout


# A single handshaking pair: the scenario where "fault-free" really
# means loss-free most of the time, so the identity branch of the
# property below is exercised often (organic same-pair collisions
# still lose a message on a small fraction of seeds).
IDENTITY = JRSNDConfig(
    n_nodes=2,
    codes_per_node=3,
    share_count=2,
    n_compromised=0,
    field_width=400.0,
    field_height=400.0,
    tx_range=300.0,
    rho=1e-9,
)


def _fingerprint(config, seed):
    """Everything observable about one fault-free run."""
    net = build_event_network(config, seed=seed)
    for node in net.nodes:
        node.initiate_dndp()
    net.simulator.run(until=30.0)
    start = net.simulator.now
    for node in net.nodes:
        node.initiate_mndp(nu=2)
    net.simulator.run(until=start + 60.0)
    return (
        net.logical_pairs(),
        dict(net.trace.counters()),
        net.medium.delivered_count,
        net.medium.jammed_count,
        [node.outcome() for node in net.nodes],
    )


class TestFaultFreeIdentity:
    """The two runs share one rng stream until the first divergence
    trigger, and there are exactly two triggers: the legacy responder
    hitting its short CONFIRM deadline, or a hardened retry timer
    actually retransmitting.  When neither fires — no handshake
    message was lost — enabling the retry machinery must not perturb
    one bit of the run.  When a message *was* lost organically, the
    hardening must do no worse than the seed's fire-and-forget."""

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_retries_on_equals_retries_off_when_nothing_lost(
        self, seed
    ):
        hardened = _fingerprint(IDENTITY, seed)
        legacy = _fingerprint(
            IDENTITY.replace(retry_max_attempts=0), seed
        )
        lost = (
            legacy[1].get("dndp.responder_timeout", 0) > 0
            or hardened[1].get("retry.auth_retransmits", 0) > 0
        )
        if lost:
            # e.g. seeds 0 and 10: the seed behavior wedges to zero
            # links, the retransmit recovers both directions.
            assert len(hardened[0]) >= len(legacy[0])
        else:
            assert hardened == legacy

"""Property-based tests for pre-distribution invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.predistribution.authority import PreDistributor


@st.composite
def distribution_params(draw):
    l = draw(st.integers(min_value=2, max_value=12))
    w = draw(st.integers(min_value=2, max_value=8))
    slack = draw(st.integers(min_value=0, max_value=l - 1))
    n = l * w - slack
    if n < l:
        n = l
    m = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, m, l, seed


class TestAssignmentInvariants:
    @given(distribution_params())
    @settings(max_examples=60, deadline=None)
    def test_every_node_has_m_distinct_codes(self, params):
        n, m, l, seed = params
        assignment = PreDistributor(n, m, l).assign(
            np.random.default_rng(seed)
        )
        for codes in assignment.node_codes:
            assert len(codes) == m
            assert len(set(codes)) == m

    @given(distribution_params())
    @settings(max_examples=60, deadline=None)
    def test_share_count_bounded_by_l(self, params):
        n, m, l, seed = params
        assignment = PreDistributor(n, m, l).assign(
            np.random.default_rng(seed)
        )
        assert assignment.max_share_count() <= l

    @given(distribution_params())
    @settings(max_examples=60, deadline=None)
    def test_holders_consistent_with_node_codes(self, params):
        n, m, l, seed = params
        assignment = PreDistributor(n, m, l).assign(
            np.random.default_rng(seed)
        )
        for node, codes in enumerate(assignment.node_codes):
            for code in codes:
                assert node in assignment.holders_of(code)

    @given(distribution_params(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_join_gives_full_code_sets(self, params, n_new):
        n, m, l, seed = params
        distributor = PreDistributor(n, m, l)
        rng = np.random.default_rng(seed)
        assignment = distributor.assign(rng)
        extended, new_nodes = distributor.admit_new_nodes(
            assignment, n_new, rng
        )
        assert len(new_nodes) == n_new
        for node in new_nodes:
            assert len(extended.node_codes[node]) == m
        # Virtual slots absorb joiners for free; beyond that each batch
        # of w new nodes adds one share per code (Section V-A).
        beyond_virtual = max(0, n_new - distributor.n_virtual)
        batches = -(-beyond_virtual // distributor.subsets_per_round)
        assert extended.max_share_count() <= l + batches

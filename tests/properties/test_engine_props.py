"""Property-based tests for the discrete-event kernel."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator, Timeout


class TestKernelProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_callbacks_fire_in_sorted_order(self, times):
        sim = Simulator()
        fired = []
        for when in times:
            sim.call_at(when, fired.append, when)
        sim.run()
        assert fired == sorted(times)

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_process_timeouts_accumulate(self, delays):
        sim = Simulator()
        marks = []

        def proc():
            for delay in delays:
                yield Timeout(delay)
                marks.append(sim.now)

        sim.process(proc())
        sim.run()
        expected = []
        total = 0.0
        for delay in delays:
            total += delay
            expected.append(total)
        assert len(marks) == len(expected)
        for got, want in zip(marks, expected):
            assert abs(got - want) < 1e-6 * max(1.0, want)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_run_until_partitions_execution(self, entries):
        """Running to T then to completion executes everything once."""
        sim = Simulator()
        fired = []
        for when, tag in entries:
            sim.call_at(when, fired.append, (when, tag))
        sim.run(until=50.0)
        early = len(fired)
        assert all(when <= 50.0 for when, _ in fired)
        sim.run()
        assert len(fired) == len(entries)
        assert early == sum(1 for when, _ in entries if when <= 50.0)

"""Property-based tests for bit utilities and session codes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.crypto.session import derive_session_code
from repro.utils.bitstring import (
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    nrz_from_bits,
    nrz_to_bits,
    xor_bits,
)


class TestBitstringProps:
    @given(st.binary(min_size=0, max_size=64))
    def test_bytes_roundtrip(self, data):
        assert bits_to_bytes(bits_from_bytes(data)) == data

    @given(st.integers(min_value=1, max_value=60), st.data())
    def test_int_roundtrip(self, width, data):
        value = data.draw(
            st.integers(min_value=0, max_value=(1 << width) - 1)
        )
        assert bits_to_int(bits_from_int(value, width)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=100))
    def test_nrz_roundtrip(self, raw):
        bits = np.asarray(raw, dtype=np.int8)
        assert np.array_equal(nrz_to_bits(nrz_from_bits(bits)), bits)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                    max_size=64))
    def test_xor_self_is_zero(self, raw):
        bits = np.asarray(raw, dtype=np.int8)
        assert not xor_bits(bits, bits).any()


class TestSessionCodeProps:
    @given(
        st.binary(min_size=1, max_size=48),
        st.integers(min_value=0, max_value=(1 << 20) - 1),
        st.integers(min_value=0, max_value=(1 << 20) - 1),
        st.integers(min_value=8, max_value=600),
    )
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, key, nonce_a, nonce_b, length):
        a = derive_session_code(key, nonce_a, nonce_b, length)
        b = derive_session_code(key, nonce_b, nonce_a, length)
        assert a == b
        assert a.length == length

    @given(
        st.binary(min_size=1, max_size=16),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_balanced_chips(self, key, nonce):
        """Derived codes look pseudorandom: chips roughly balanced."""
        code = derive_session_code(key, nonce, nonce + 1, 512)
        ones = int((code.chips == 1).sum())
        assert 180 < ones < 332  # ~6 sigma around 256

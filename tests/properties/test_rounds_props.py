"""Property tests for the exact Section V-B round-count arithmetic.

``r = ceil((lambda + 1)(m + 1) / m)`` decides how long a HELLO broadcast
must repeat to cover a full buffered window; an off-by-one *under* the
exact value breaks the coverage guarantee.  The float formulation
``math.ceil((lam + 1.0) * (cycle + 1) / cycle)`` does exactly that near
integer quotients, which Hypothesis plus a pinned witness keep fixed.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsss.receiver import required_hello_rounds
from repro.errors import ConfigurationError


def _exact(lam: float, cycle: int) -> int:
    quotient = (Fraction(lam) + 1) * (cycle + 1) / cycle
    return int(math.ceil(quotient))


class TestRequiredHelloRounds:
    @given(
        st.floats(min_value=0.0, max_value=1e18, allow_nan=False,
                  allow_infinity=False),
        st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_exact_rational_ceiling(self, lam, cycle):
        assert required_hello_rounds(lam, cycle) == _exact(lam, cycle)

    @given(
        # Near-integer quotients are where float arithmetic slips:
        # build lam so that (lam + 1)(cycle + 1) is almost divisible by
        # cycle, then nudge it across neighboring representables.
        st.integers(min_value=1, max_value=2**60),
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=-2, max_value=2),
    )
    @settings(max_examples=300, deadline=None)
    def test_near_integer_quotients(self, scale, cycle, nudge):
        lam = scale * cycle / (cycle + 1) - 1.0
        for _ in range(abs(nudge)):
            lam = math.nextafter(lam, math.inf if nudge > 0 else -math.inf)
        if lam < 0:
            lam = 0.0
        assert required_hello_rounds(lam, cycle) == _exact(lam, cycle)

    def test_pinned_float_regression(self):
        # lam = 3 * 2**50, cycle = 3: the float product rounds down and
        # math.ceil lands one full round short of the exact count.
        lam, cycle = 3377699720527872.0, 3
        assert lam == 3 * 2**50
        float_formula = math.ceil((lam + 1.0) * (cycle + 1) / cycle)
        exact = required_hello_rounds(lam, cycle)
        assert exact == 4503599627370498
        assert float_formula == 4503599627370497  # the bug being fixed
        assert exact == _exact(lam, cycle)

    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=200, deadline=None)
    def test_covers_at_least_the_real_ratio(self, lam, cycle):
        # r * cycle >= (lam + 1)(cycle + 1): the broadcast spans the
        # window it is sized for, never less.
        r = required_hello_rounds(lam, cycle)
        assert r * cycle >= (Fraction(lam) + 1) * (cycle + 1)
        # ... and is the *smallest* such integer.
        assert (r - 1) * cycle < (Fraction(lam) + 1) * (cycle + 1)

    def test_accepts_exact_fractions(self):
        assert required_hello_rounds(Fraction(5, 2), 2) == 6  # 21/4 -> 6
        assert required_hello_rounds(0.0, 4) == 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            required_hello_rounds(-0.5, 3)
        with pytest.raises(ConfigurationError):
            required_hello_rounds(1.0, 0)

"""Property-based tests for GF(2^8) arithmetic."""

from hypothesis import given, strategies as st

from repro.ecc.gf256 import GF256

element = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldProperties:
    @given(element, element)
    def test_add_commutative(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(element, element, element)
    def test_add_associative(self, a, b, c):
        assert GF256.add(GF256.add(a, b), c) == GF256.add(
            a, GF256.add(b, c)
        )

    @given(element, element)
    def test_multiply_commutative(self, a, b):
        assert GF256.multiply(a, b) == GF256.multiply(b, a)

    @given(element, element, element)
    def test_multiply_associative(self, a, b, c):
        assert GF256.multiply(GF256.multiply(a, b), c) == GF256.multiply(
            a, GF256.multiply(b, c)
        )

    @given(element, element, element)
    def test_distributive(self, a, b, c):
        assert GF256.multiply(a, GF256.add(b, c)) == GF256.add(
            GF256.multiply(a, b), GF256.multiply(a, c)
        )

    @given(nonzero)
    def test_inverse_roundtrip(self, a):
        assert GF256.multiply(a, GF256.inverse(a)) == 1

    @given(element, nonzero)
    def test_divide_roundtrip(self, a, b):
        assert GF256.multiply(GF256.divide(a, b), b) == a

    @given(nonzero, st.integers(min_value=-500, max_value=500))
    def test_power_additivity(self, a, k):
        left = GF256.multiply(GF256.power(a, k), GF256.power(a, 1))
        assert left == GF256.power(a, k + 1)


class TestPolynomialProperties:
    polys = st.lists(element, min_size=1, max_size=12)

    @given(polys, polys, element)
    def test_multiply_matches_eval(self, p, q, x):
        product = GF256.poly_multiply(p, q)
        assert GF256.poly_eval(product, x) == GF256.multiply(
            GF256.poly_eval(p, x), GF256.poly_eval(q, x)
        )

    @given(polys, polys, element)
    def test_add_matches_eval(self, p, q, x):
        total = GF256.poly_add(p, q)
        assert GF256.poly_eval(total, x) == GF256.add(
            GF256.poly_eval(p, x), GF256.poly_eval(q, x)
        )

    @given(polys, st.lists(element, min_size=2, max_size=6), element)
    def test_divmod_identity(self, dividend, divisor_tail, x):
        divisor = [1] + divisor_tail  # monic, nonzero
        quotient, remainder = GF256.poly_divmod(dividend, divisor)
        lhs = GF256.poly_eval(dividend, x)
        rhs = GF256.add(
            GF256.multiply(
                GF256.poly_eval(quotient, x), GF256.poly_eval(divisor, x)
            ),
            GF256.poly_eval(remainder, x),
        )
        assert lhs == rhs

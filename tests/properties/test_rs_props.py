"""Property-based tests for the Reed-Solomon codec."""

from hypothesis import given, settings, strategies as st

from repro.ecc.reed_solomon import ReedSolomonCodec

symbol = st.integers(min_value=0, max_value=255)


@st.composite
def corruption_case(draw):
    """A message plus an errors+erasures pattern within capability."""
    n_parity = draw(st.integers(min_value=2, max_value=20))
    k = draw(st.integers(min_value=1, max_value=255 - n_parity))
    message = draw(
        st.lists(symbol, min_size=k, max_size=k)
    )
    n = k + n_parity
    e = draw(st.integers(min_value=0, max_value=n_parity // 2))
    f = draw(st.integers(min_value=0, max_value=n_parity - 2 * e))
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=e + f,
            max_size=e + f,
            unique=True,
        )
    )
    flips = draw(
        st.lists(
            st.integers(min_value=1, max_value=255),
            min_size=e + f,
            max_size=e + f,
        )
    )
    return n_parity, message, positions[:e], positions[e:], flips


class TestRSRoundtrip:
    @given(corruption_case())
    @settings(max_examples=120, deadline=None)
    def test_decode_within_capability(self, case):
        n_parity, message, error_pos, erasure_pos, flips = case
        rs = ReedSolomonCodec(n_parity)
        codeword = rs.encode(message)
        for position, flip in zip(error_pos + erasure_pos, flips):
            codeword[position] ^= flip
        assert rs.decode(codeword, erasure_pos) == message

    @given(
        st.integers(min_value=2, max_value=16),
        st.lists(symbol, min_size=1, max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_clean_roundtrip(self, n_parity, message):
        rs = ReedSolomonCodec(n_parity)
        assert rs.decode(rs.encode(message)) == message

    @given(
        st.integers(min_value=2, max_value=16),
        st.lists(symbol, min_size=1, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_codeword_length(self, n_parity, message):
        rs = ReedSolomonCodec(n_parity)
        assert len(rs.encode(message)) == len(message) + n_parity

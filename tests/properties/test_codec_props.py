"""Property-based tests for the expansion codec and frames."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dsss.frame import Frame, FrameCodec, MessageType
from repro.ecc.codec import ExpansionCodec

bits = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=400)


class TestExpansionCodecProps:
    @given(bits, st.sampled_from([0.5, 1.0, 2.0]))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, message, mu):
        codec = ExpansionCodec(mu)
        arr = np.asarray(message, dtype=np.int8)
        coded = codec.encode(arr)
        decoded = codec.decode([int(b) for b in coded], arr.size)
        assert np.array_equal(decoded, arr)

    @given(bits)
    @settings(max_examples=60, deadline=None)
    def test_encoded_length_consistent(self, message):
        codec = ExpansionCodec(1.0)
        arr = np.asarray(message, dtype=np.int8)
        assert codec.encode(arr).size == codec.encoded_bits(arr.size)

    @given(
        bits,
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_tolerated_burst_always_decodes(self, message, start_seed):
        codec = ExpansionCodec(1.0)
        arr = np.asarray(message, dtype=np.int8)
        coded = [int(b) for b in codec.encode(arr)]
        burst = codec.tolerated_burst_bits(arr.size)
        if burst == 0:
            return
        start = start_seed % max(1, len(coded) - burst)
        for i in range(start, start + burst):
            coded[i] = None
        decoded = codec.decode(coded, arr.size)
        assert np.array_equal(decoded, arr)


class TestFrameProps:
    @given(
        st.sampled_from(list(MessageType)),
        st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                 max_size=120),
    )
    @settings(max_examples=60, deadline=None)
    def test_frame_roundtrip(self, message_type, payload):
        codec = FrameCodec(mu=1.0)
        frame = Frame(message_type, np.asarray(payload, dtype=np.int8))
        coded = codec.encode(frame)
        decoded = codec.decode([int(b) for b in coded], len(payload))
        assert decoded == frame

"""Property-based tests: wire serialization roundtrips."""

from hypothesis import given, settings, strategies as st

from repro.core.config import default_config
from repro.core.messages import (
    AuthRequest,
    Confirm,
    Hello,
    MNDPExtension,
    MNDPRequest,
)
from repro.core.wire import WireCodec
from repro.crypto.identity import NodeId, TrustedAuthority
from repro.crypto.signatures import SignatureScheme

CONFIG = default_config()
AUTHORITY = TrustedAuthority(b"prop", id_bits=CONFIG.id_bits)
SCHEME = SignatureScheme(AUTHORITY.public_parameters())
CODEC = WireCodec(CONFIG)

node_value = st.integers(min_value=0, max_value=(1 << CONFIG.id_bits) - 1)
nonce = st.integers(min_value=0, max_value=(1 << CONFIG.nonce_bits) - 1)


def _node(value: int) -> NodeId:
    return NodeId(value, CONFIG.id_bits)


class TestBeaconProps:
    @given(node_value)
    def test_hello_roundtrip(self, value):
        message = Hello(_node(value))
        assert CODEC.decode(CODEC.encode(message)) == message

    @given(node_value)
    def test_confirm_roundtrip(self, value):
        message = Confirm(_node(value))
        assert CODEC.decode(CODEC.encode(message)) == message


class TestAuthProps:
    @given(node_value, nonce, st.binary(min_size=6, max_size=6))
    @settings(max_examples=60)
    def test_auth_roundtrip(self, value, n, raw_tag):
        # Mask trailing bits beyond l_mac (44) like the MAC layer does.
        tag = bytearray(raw_tag)
        tag[-1] &= 0xF0
        message = AuthRequest(
            sender=_node(value), nonce=n, mac_tag=bytes(tag)
        )
        assert CODEC.decode(CODEC.encode(message)) == message


@st.composite
def signed_requests(draw):
    source_value = draw(node_value)
    neighbor_values = draw(
        st.lists(node_value, max_size=6, unique=True)
    )
    n = draw(nonce)
    hops = draw(st.integers(min_value=1, max_value=7))
    with_position = draw(st.booleans())
    position = (
        (
            draw(st.integers(min_value=0, max_value=500000)) / 100.0,
            draw(st.integers(min_value=0, max_value=500000)) / 100.0,
        )
        if with_position
        else None
    )
    source = _node(source_value)
    key = AUTHORITY.issue_private_key(source)
    request = MNDPRequest(
        source=source,
        source_neighbors=tuple(_node(v) for v in neighbor_values),
        nonce=n,
        hop_budget=hops,
        source_signature=None,
        source_position=position,
    )
    signature = SCHEME.sign(key, request.source_signed_bytes())
    request = MNDPRequest(
        source=request.source,
        source_neighbors=request.source_neighbors,
        nonce=request.nonce,
        hop_budget=request.hop_budget,
        source_signature=signature,
        source_position=position,
    )
    if draw(st.booleans()):
        relay = _node(draw(node_value))
        relay_key = AUTHORITY.issue_private_key(relay)
        unsigned = MNDPExtension(relay, (request.source,), None)
        ext_sig = SCHEME.sign(
            relay_key,
            unsigned.signed_bytes(request.source_signed_bytes()),
        )
        request = request.extended(
            MNDPExtension(relay, (request.source,), ext_sig)
        )
    return request


class TestMNDPProps:
    @given(signed_requests())
    @settings(max_examples=40, deadline=None)
    def test_request_roundtrip(self, request):
        decoded = CODEC.decode(CODEC.encode(request))
        assert decoded == request

    @given(signed_requests())
    @settings(max_examples=30, deadline=None)
    def test_signature_survives(self, request):
        from repro.core.mndp import validate_request_chain

        decoded = CODEC.decode(CODEC.encode(request))
        assert validate_request_chain(decoded, SCHEME) == (
            validate_request_chain(request, SCHEME)
        )

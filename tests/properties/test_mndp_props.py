"""Property-based tests for the M-NDP closure model."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.mndp import LogicalGraph, MNDPSampler


@st.composite
def random_graph_case(draw):
    n = draw(st.integers(min_value=3, max_value=25))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=60,
        )
    )
    edges = [(a, b) for a, b in edges if a != b]
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=1,
            max_size=20,
        )
    )
    pairs = [(min(a, b), max(a, b)) for a, b in pairs if a != b]
    nu = draw(st.integers(min_value=1, max_value=5))
    return n, edges, pairs, nu


class TestClosureProperties:
    @given(random_graph_case())
    @settings(max_examples=80, deadline=None)
    def test_matches_networkx_shortest_paths(self, case):
        n, edges, pairs, nu = case
        logical = LogicalGraph(n)
        reference = nx.Graph()
        reference.add_nodes_from(range(n))
        for a, b in edges:
            logical.add_link(a, b)
            reference.add_edge(a, b)
        discovered = MNDPSampler(nu).discover(pairs, logical, rounds=1)
        for a, b in set(pairs):
            if logical.has_link(a, b):
                assert (a, b) not in discovered
                continue
            try:
                reachable = (
                    nx.shortest_path_length(reference, a, b) <= nu
                )
            except nx.NetworkXNoPath:
                reachable = False
            assert ((a, b) in discovered) == reachable

    @given(random_graph_case())
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_nu(self, case):
        n, edges, pairs, nu = case
        logical = LogicalGraph(n)
        for a, b in edges:
            logical.add_link(a, b)
        smaller = MNDPSampler(nu).discover(pairs, logical, rounds=1)
        larger = MNDPSampler(nu + 1).discover(pairs, logical, rounds=1)
        assert smaller <= larger

    @given(random_graph_case())
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_rounds(self, case):
        n, edges, pairs, nu = case
        logical = LogicalGraph(n)
        for a, b in edges:
            logical.add_link(a, b)
        one = MNDPSampler(nu).discover(pairs, logical, rounds=1)
        three = MNDPSampler(nu).discover(pairs, logical, rounds=3)
        assert one <= three

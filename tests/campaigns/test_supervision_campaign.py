"""Campaign-level self-healing: chaos, quarantine, degradation, salvage.

Everything here drives ``run_campaign`` under the seeded
execution-plane injectors (:mod:`repro.faults.execution`) and pins the
headline robustness guarantee: supervision may change *how long* a
campaign takes, never *what bytes* it produces.  Every scenario ends
with a byte comparison against the module's uninterrupted reference
store.
"""

import sqlite3

import pytest

from repro.campaigns import CampaignSpec, CampaignStore, run_campaign
from repro.campaigns.store import QUARANTINE_KIND
from repro.errors import is_quarantined_failure
from repro.experiments.pool import SupervisionPolicy
from repro.faults import ExecutionFaultPlan, WorkerKiller
from repro.obs import installed
from repro.obs import names as _names
from repro.obs.registry import MetricsRegistry

REV = "testrev"

FAST = SupervisionPolicy(
    backoff_base=0.01, backoff_max=0.05, close_grace=5.0
)


def tiny_spec():
    return CampaignSpec(
        name="smoke",
        seed=2011,
        runs_per_point=4,
        runs_per_shard=2,
        base="tiny",
        grid={"n_compromised": [5, 10]},
    )


def plan(*injectors):
    return ExecutionFaultPlan(tuple(injectors))


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """An uninterrupted campaign's canonical store (path, bytes)."""
    path = str(tmp_path_factory.mktemp("ref") / "ref.sqlite")
    status = run_campaign(tiny_spec(), path, git_revision=REV)
    assert status.complete
    with open(path, "rb") as handle:
        return path, handle.read(), status


class TestChaosCompletes:
    """Worker kills inside the retry budget are invisible in the store."""

    def test_pooled_campaign_survives_worker_kills(
        self, tmp_path, reference
    ):
        _, expected, ref_status = reference
        path = str(tmp_path / "chaos.sqlite")
        status = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            supervision=FAST,
            execution_faults=plan(WorkerKiller(kills={1: 1, 3: 2})),
        )
        assert status.complete
        assert status.runs_quarantined == 0
        assert status.degraded == ()
        assert status.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected

    def test_no_pool_campaign_survives_worker_kills(
        self, tmp_path, reference
    ):
        _, expected, _ = reference
        path = str(tmp_path / "chaos-nopool.sqlite")
        status = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            use_pool=False,
            supervision=FAST,
            execution_faults=plan(WorkerKiller(kills={0: 1, 2: 1})),
        )
        assert status.complete
        assert status.runs_quarantined == 0
        with open(path, "rb") as handle:
            assert handle.read() == expected


class TestQuarantine:
    POLICY = SupervisionPolicy(
        max_run_retries=1, backoff_base=0.01, close_grace=5.0
    )
    # Run 3 exists in both points, so the shards covering runs 2..3
    # of each point (indices 1 and 3) both quarantine one run.
    POISON = plan(WorkerKiller(kills={3: 99}))

    def test_poison_run_quarantines_shard_not_campaign(self, tmp_path):
        path = str(tmp_path / "poison.sqlite")
        status = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            supervision=self.POLICY, execution_faults=self.POISON,
        )
        assert not status.complete
        assert status.runs_quarantined == 2
        assert status.shards_quarantined == 2
        spec = tiny_spec()
        with CampaignStore(path) as store:
            done = store.completed_shards(
                spec.name, spec.spec_hash(), REV
            )
            records = store.failure_records(
                spec.name, spec.spec_hash(), REV,
                kind=QUARANTINE_KIND,
            )
        assert done == frozenset({0, 2})
        assert [
            (record["shard_index"], record["run_index"])
            for record in records
        ] == [(1, 3), (3, 3)]
        assert all(
            is_quarantined_failure(record["detail"])
            and record["attempts"] == 2
            for record in records
        )

    def test_resume_skips_then_retry_quarantined_completes(
        self, tmp_path, reference
    ):
        _, expected, ref_status = reference
        path = str(tmp_path / "poison.sqlite")
        run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            supervision=self.POLICY, execution_faults=self.POISON,
        )
        # Plain resume must not re-execute known-poison shards.
        lines = []
        plain = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            progress=lines.append,
        )
        assert not plain.complete
        assert plain.shards_executed == 0
        assert plain.runs_quarantined == 2
        assert any("retry-quarantined" in line for line in lines)
        # --retry-quarantined clears the records and re-executes; with
        # the fault gone the campaign finishes bit-identically.
        retried = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            retry_quarantined=True,
        )
        assert retried.complete
        assert retried.runs_quarantined == 0
        assert retried.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected


class TestDegradationLadder:
    def test_pool_failure_degrades_to_serial_and_completes(
        self, tmp_path, reference
    ):
        """With a zero respawn budget every worker death is an
        infrastructure failure: the executor steps persistent pool →
        per-shard pool → serial, loudly, and still produces the
        reference bytes (degradation events are telemetry, not
        content)."""
        _, expected, ref_status = reference
        path = str(tmp_path / "degraded.sqlite")
        lines = []
        registry = MetricsRegistry()
        with installed(registry):
            status = run_campaign(
                tiny_spec(), path, processes=2, git_revision=REV,
                supervision=SupervisionPolicy(
                    max_respawns=0, backoff_base=0.0, close_grace=5.0
                ),
                execution_faults=plan(WorkerKiller(kills={0: 1})),
                progress=lines.append,
            )
        assert status.complete
        assert len(status.degraded) == 2
        assert any("degrading to 'per-shard'" in line for line in lines)
        assert any("degrading to 'serial'" in line for line in lines)
        assert registry.snapshot().counters[_names.POOL_DEGRADED] == 2
        assert status.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected


class TestSalvage:
    def test_torn_store_salvaged_then_resume_bit_identical(
        self, tmp_path, reference
    ):
        """Losing run rows from a committed shard (logical tear) drops
        exactly that shard at the next open; resume re-executes it and
        the final store is byte-identical."""
        _, expected, ref_status = reference
        path = str(tmp_path / "torn.sqlite")
        run_campaign(
            tiny_spec(), path, max_shards=2, git_revision=REV
        )
        conn = sqlite3.connect(path)
        conn.execute(
            "DELETE FROM runs WHERE shard_index = 1 AND run_index = 3"
        )
        conn.commit()
        conn.close()
        lines = []
        registry = MetricsRegistry()
        with installed(registry):
            resumed = run_campaign(
                tiny_spec(), path, git_revision=REV,
                progress=lines.append,
            )
        assert any("salvaged" in line for line in lines)
        counters = registry.snapshot().counters
        assert counters[_names.CAMPAIGNS_STORE_SALVAGED] == 1
        assert resumed.complete
        assert resumed.shards_skipped == 1  # shard 0 survived the tear
        assert resumed.shards_executed == 3
        assert resumed.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected

    def test_physically_corrupt_store_salvaged_and_rebuilt(
        self, tmp_path, reference
    ):
        """Garbage over every page past the header still yields a
        working (possibly empty) store; the resume re-runs what was
        lost and lands on the reference bytes."""
        _, expected, _ = reference
        path = str(tmp_path / "corrupt.sqlite")
        run_campaign(
            tiny_spec(), path, max_shards=2, git_revision=REV
        )
        with open(path, "r+b") as handle:
            handle.seek(4096)
            remaining = handle.seek(0, 2) - 4096
            handle.seek(4096)
            handle.write(b"\xa5" * remaining)
        lines = []
        resumed = run_campaign(
            tiny_spec(), path, git_revision=REV,
            progress=lines.append,
        )
        assert any("salvaged" in line for line in lines)
        assert resumed.complete
        with open(path, "rb") as handle:
            assert handle.read() == expected

    def test_unsupported_schema_version_is_refused_not_salvaged(
        self, tmp_path
    ):
        from repro.errors import ConfigurationError

        path = str(tmp_path / "future.sqlite")
        with CampaignStore(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigurationError, match="schema"):
            CampaignStore(path)


class TestCli:
    def test_chaos_within_budget_completes_clean(
        self, tmp_path, reference, capsys
    ):
        """The CI chaos scenario: every run kills its worker once,
        which is inside the default retry budget, so the campaign
        finishes with zero quarantined runs and reference bytes."""
        from repro.cli import main

        _, expected, _ = reference
        path = str(tmp_path / "chaos-cli.sqlite")
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as handle:
            handle.write(tiny_spec().to_json())
        rc = main([
            "campaign", "launch", "--spec", spec_path,
            "--store", path, "--revision", REV, "--processes", "2",
            "--chaos-kill-rate", "1.0", "--chaos-max-kills", "1",
        ])
        capsys.readouterr()
        assert rc == 0
        with open(path, "rb") as handle:
            assert handle.read() == expected
        assert main([
            "campaign", "status", "--store", path, "--json",
        ]) == 0

    def test_status_json_reports_quarantine_with_exit_3(
        self, tmp_path, reference, capsys
    ):
        import json

        from repro.cli import main

        _, expected, _ = reference
        path = str(tmp_path / "poison-cli.sqlite")
        run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            supervision=TestQuarantine.POLICY,
            execution_faults=TestQuarantine.POISON,
        )
        assert main([
            "campaign", "status", "--store", path, "--json",
        ]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs_quarantined"] == 2
        (campaign,) = payload["campaigns"]
        assert campaign["shards_done"] == 2
        assert campaign["shards_pending"] == 2
        assert campaign["shards_quarantined"] == 2
        assert [
            (entry["shard_index"], entry["run_index"])
            for entry in campaign["quarantined_runs"]
        ] == [(1, 3), (3, 3)]
        # Plain (non-JSON) status surfaces the same exit code.
        assert main([
            "campaign", "status", "--store", path,
        ]) == 3
        capsys.readouterr()
        # The resume CLI with --retry-quarantined finishes the job.
        assert main([
            "campaign", "resume", "--store", path,
            "--campaign", "smoke", "--revision", REV,
            "--processes", "2", "--retry-quarantined",
        ]) == 0
        capsys.readouterr()
        with open(path, "rb") as handle:
            assert handle.read() == expected

"""End-to-end executor tests: the resume bit-identity guarantee.

The expensive guarantee under test: a campaign killed mid-flight
(gracefully via ``max_shards`` or violently via SIGKILL) and then
resumed produces a results store *byte-identical* to an uninterrupted
run's.  The subprocess test drives the real ``--kill-after-shards``
CLI hook, which delivers an actual ``SIGKILL`` — no atexit, no sqlite
cleanup — so the recovery path exercised here is the one a crash or
OOM kill takes in production.
"""

import os
import shutil
import subprocess
import sys

import pytest

from repro.campaigns import CampaignSpec, CampaignStore, run_campaign

REV = "testrev"


def tiny_spec():
    return CampaignSpec(
        name="smoke",
        seed=2011,
        runs_per_point=4,
        runs_per_shard=2,
        base="tiny",
        grid={"n_compromised": [5, 10]},
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """An uninterrupted campaign's canonical store (path, bytes)."""
    path = str(tmp_path_factory.mktemp("ref") / "ref.sqlite")
    status = run_campaign(tiny_spec(), path, git_revision=REV)
    assert status.complete
    with open(path, "rb") as handle:
        return path, handle.read(), status


class TestUninterrupted:
    def test_status_accounting(self, reference):
        _, _, status = reference
        assert status.shards_total == 4
        assert status.shards_executed == 4
        assert status.shards_skipped == 0
        assert status.runs_executed == 8
        assert not status.was_noop

    def test_summary_sidecar_written(self, reference):
        path, _, status = reference
        import json

        with open(path + ".summary.json") as handle:
            summary = json.load(handle)
        assert summary["campaign_id"] == "smoke"
        assert summary["canonical_digest"] == status.canonical_digest
        assert summary["shards"] == 4


class TestResume:
    def test_graceful_stop_then_resume_is_bit_identical(
        self, tmp_path, reference
    ):
        _, expected, ref_status = reference
        path = str(tmp_path / "partial.sqlite")
        partial = run_campaign(
            tiny_spec(), path, max_shards=2, git_revision=REV
        )
        assert partial.shards_executed == 2
        assert not partial.complete
        resumed = run_campaign(tiny_spec(), path, git_revision=REV)
        assert resumed.complete
        assert resumed.shards_skipped == 2
        assert resumed.shards_executed == 2
        assert resumed.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected

    def test_sigkill_then_resume_is_bit_identical(
        self, tmp_path, reference
    ):
        """Real SIGKILL mid-campaign via the CLI testing hook."""
        _, expected, ref_status = reference
        path = str(tmp_path / "killed.sqlite")
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as handle:
            handle.write(tiny_spec().to_json())
        env = dict(os.environ)
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            ))),
            "src",
        )
        env["PYTHONPATH"] = repo_src
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "campaign", "launch",
                "--spec", spec_path, "--store", path,
                "--revision", REV, "--kill-after-shards", "2",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        # SIGKILL surfaces as -9 (POSIX) or 137 (through a shell).
        assert proc.returncode in (-9, 137), proc.stderr
        with CampaignStore(path) as store:
            spec = tiny_spec()
            done = store.completed_shards(
                spec.name, spec.spec_hash(), REV
            )
        assert done == frozenset({0, 1})
        resumed = run_campaign(tiny_spec(), path, git_revision=REV)
        assert resumed.complete
        assert resumed.shards_skipped == 2
        assert resumed.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected

    def test_finished_campaign_rerun_is_a_noop(
        self, tmp_path, reference
    ):
        ref_path, expected, _ = reference
        path = str(tmp_path / "copy.sqlite")
        shutil.copyfile(ref_path, path)
        again = run_campaign(tiny_spec(), path, git_revision=REV)
        assert again.was_noop
        assert again.shards_executed == 0
        with open(path, "rb") as handle:
            assert handle.read() == expected


class TestPersistentPoolEngine:
    """The pooled engine must be invisible in the store bytes.

    The module-scoped ``reference`` store is built with the default
    engine (inline on this CI's single CPU), so comparing against it
    is a cross-engine identity check, not a self-comparison.
    """

    def test_pool_store_is_bit_identical(self, tmp_path, reference):
        _, expected, ref_status = reference
        path = str(tmp_path / "pooled.sqlite")
        status = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV
        )
        assert status.complete
        assert status.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected

    def test_no_pool_store_is_bit_identical(self, tmp_path, reference):
        _, expected, _ = reference
        path = str(tmp_path / "nopool.sqlite")
        status = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV,
            use_pool=False,
        )
        assert status.complete
        with open(path, "rb") as handle:
            assert handle.read() == expected

    def test_progress_reports_rate_and_eta(self, tmp_path):
        import re

        lines = []
        run_campaign(
            tiny_spec(), str(tmp_path / "progress.sqlite"),
            processes=2, git_revision=REV, progress=lines.append,
        )
        committed = [line for line in lines if "committed" in line]
        assert len(committed) == 4
        for line in committed:
            assert re.search(
                r"\[\d+(\.\d+)? runs/s, ETA \d+(\.\d+)?s\]", line
            ), line

    def test_sigkill_mid_pooled_run_then_pooled_resume(
        self, tmp_path, reference
    ):
        """Kill/resume byte-identity with the pool on both sides of
        the crash: the pipelined in-flight shard is simply lost and
        re-executed."""
        _, expected, ref_status = reference
        path = str(tmp_path / "killed.sqlite")
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as handle:
            handle.write(tiny_spec().to_json())
        env = dict(os.environ)
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            ))),
            "src",
        )
        env["PYTHONPATH"] = repo_src
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "campaign", "launch",
                "--spec", spec_path, "--store", path,
                "--revision", REV, "--kill-after-shards", "2",
                "--processes", "2",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode in (-9, 137), proc.stderr
        with CampaignStore(path) as store:
            spec = tiny_spec()
            done = store.completed_shards(
                spec.name, spec.spec_hash(), REV
            )
        assert done == frozenset({0, 1})
        resumed = run_campaign(
            tiny_spec(), path, processes=2, git_revision=REV
        )
        assert resumed.complete
        assert resumed.shards_skipped == 2
        assert resumed.canonical_digest == ref_status.canonical_digest
        with open(path, "rb") as handle:
            assert handle.read() == expected


class TestCli:
    def test_status_query_diff(self, reference, capsys):
        from repro.cli import main

        path, _, _ = reference
        assert main(["campaign", "status", "--store", path]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "complete" in out
        assert "canonical digest:" in out

        assert main([
            "campaign", "query", "--store", path,
            "--campaign", "smoke",
        ]) == 0
        out = capsys.readouterr().out
        assert "p_dndp" in out and "n_compromised" in out

        # Diffing a revision against itself is refused.
        assert main([
            "campaign", "diff", "--store", path,
            "--campaign", "smoke",
        ]) == 1
        out = capsys.readouterr().out
        assert "nothing to diff" in out

    def test_diff_across_stores(self, reference, tmp_path, capsys):
        from repro.cli import main

        path, _, _ = reference
        other = str(tmp_path / "other.sqlite")
        status = run_campaign(
            tiny_spec(), other, git_revision="otherrev"
        )
        assert status.complete
        capsys.readouterr()
        assert main([
            "campaign", "diff", "--store", path, "--campaign", "smoke",
            "--against", "otherrev", "--other", other,
        ]) == 0
        out = capsys.readouterr().out
        # Same spec, same seeds: every delta is exactly zero.
        assert "d_jrsnd" in out
        assert "0.0000" in out

    def test_resume_reuses_stored_spec(self, tmp_path, reference,
                                       capsys):
        from repro.cli import main

        _, expected, _ = reference
        path = str(tmp_path / "partial.sqlite")
        run_campaign(
            tiny_spec(), path, max_shards=1, git_revision=REV
        )
        capsys.readouterr()
        assert main([
            "campaign", "resume", "--store", path,
            "--campaign", "smoke", "--revision", REV,
        ]) == 0
        with open(path, "rb") as handle:
            assert handle.read() == expected

"""Tests for campaign spec validation, hashing, and expansion."""

import pytest

from repro.campaigns import CampaignSpec, GRID_AXES
from repro.errors import ConfigurationError


def tiny_spec(**overrides):
    kwargs = dict(
        name="smoke",
        seed=2011,
        runs_per_point=4,
        runs_per_shard=2,
        base="tiny",
        grid={"n_compromised": [5, 10]},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestValidation:
    def test_rejects_unknown_axis(self):
        with pytest.raises(ConfigurationError, match="unknown grid axis"):
            tiny_spec(grid={"warp_factor": [9]})

    def test_rejects_empty_axis_values(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            tiny_spec(grid={"n_compromised": []})

    def test_rejects_bad_name(self):
        with pytest.raises(ConfigurationError, match="slug"):
            tiny_spec(name="not a slug!")

    def test_rejects_bad_strategy(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            tiny_spec(strategy="psychic")

    def test_rejects_bad_grid_strategy(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            tiny_spec(grid={"strategy": ["psychic"]})

    def test_rejects_bad_preset(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(base="enormous")

    def test_rejects_unknown_spec_field(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            CampaignSpec.from_dict(
                {"name": "x", "seed": 1, "runs_per_point": 1,
                 "color": "red"}
            )

    def test_requires_mandatory_fields(self):
        with pytest.raises(ConfigurationError, match="missing"):
            CampaignSpec.from_dict({"name": "x", "seed": 1})

    def test_rejects_bad_phy_backend(self):
        with pytest.raises(ConfigurationError, match="phy_backend"):
            tiny_spec(phy_backend="analog")

    def test_phy_backend_round_trip(self):
        spec = tiny_spec(phy_backend="chipless")
        again = CampaignSpec.from_json(spec.to_json())
        assert again.phy_backend == "chipless"
        assert again.spec_hash() == spec.spec_hash()
        # Default (None) means "use the base preset's backend", so a
        # tiny-chipless base is not silently overridden.
        assert tiny_spec().phy_backend is None
        assert tiny_spec(base="tiny-chipless").phy_backend is None


class TestHashing:
    def test_hash_is_stable_across_constructions(self):
        """The hash is a content address: key order and container
        types must not affect it."""
        a = tiny_spec(grid={"n_compromised": [5, 10], "nu": [1, 2]})
        b = tiny_spec(grid={"nu": (1, 2), "n_compromised": (5, 10)})
        assert a.spec_hash() == b.spec_hash()

    def test_hash_changes_with_content(self):
        assert tiny_spec().spec_hash() != tiny_spec(seed=7).spec_hash()
        assert (tiny_spec().spec_hash()
                != tiny_spec(runs_per_point=8).spec_hash())

    def test_json_round_trip_preserves_hash(self):
        spec = tiny_spec(grid={"n_compromised": [5, 10], "nu": [1, 2]})
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()


class TestExpansion:
    def test_point_count_is_cartesian_product(self):
        spec = tiny_spec(grid={"n_compromised": [5, 10], "nu": [1, 2, 3]})
        assert len(spec.points()) == 6

    def test_no_grid_is_a_single_point(self):
        spec = tiny_spec(grid={})
        points = spec.points()
        assert len(points) == 1
        assert points[0].params_dict == {
            "strategy": "reactive", "link_model": "codes",
        }

    def test_expansion_is_deterministic(self):
        spec = tiny_spec(grid={"n_compromised": [5, 10], "nu": [1, 2]})
        assert spec.points() == spec.points()
        assert spec.shards() == spec.shards()

    def test_point_seeds_are_distinct_and_seed_derived(self):
        spec = tiny_spec(grid={"n_compromised": [5, 10], "nu": [1, 2]})
        seeds = [point.seed for point in spec.points()]
        assert len(set(seeds)) == len(seeds)
        other = tiny_spec(seed=7, grid={"n_compromised": [5, 10],
                                        "nu": [1, 2]})
        assert seeds != [point.seed for point in other.points()]

    def test_shard_chunking_covers_all_runs(self):
        spec = tiny_spec(runs_per_point=5, runs_per_shard=2)
        shards = spec.shards()
        # 2 points x ceil(5/2) shards
        assert len(shards) == 6
        for point_index in (0, 1):
            ranges = [
                (shard.run_start, shard.run_stop)
                for shard in shards
                if shard.point.index == point_index
            ]
            assert ranges == [(0, 2), (2, 4), (4, 5)]
        assert [shard.index for shard in shards] == list(range(6))

    def test_default_is_one_shard_per_point(self):
        spec = tiny_spec(runs_per_shard=None)
        shards = spec.shards()
        assert len(shards) == 2
        assert all(shard.n_runs == 4 for shard in shards)

    def test_point_config_applies_overrides(self):
        spec = tiny_spec()
        configs = [spec.point_config(p) for p in spec.points()]
        assert [c.n_compromised for c in configs] == [5, 10]

    def test_phy_noise_axis_applies_to_point_configs(self):
        spec = tiny_spec(grid={"phy_noise_std": [0.0, 2.0]})
        configs = [spec.point_config(p) for p in spec.points()]
        assert [c.phy_noise_std for c in configs] == [0.0, 2.0]

    def test_axes_registry_matches_paper_parameters(self):
        for axis in ("n_nodes", "codes_per_node", "share_count",
                     "n_compromised", "nu", "phy_noise_std",
                     "strategy", "link_model"):
            assert axis in GRID_AXES

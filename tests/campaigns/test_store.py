"""Tests for the SQLite campaign results store."""

import pytest

from repro.campaigns import CampaignSpec, CampaignStore
from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult
from repro.obs import MetricsRegistry

REV = "deadbeef"


def tiny_spec(**overrides):
    kwargs = dict(
        name="smoke",
        seed=2011,
        runs_per_point=4,
        runs_per_shard=2,
        base="tiny",
        grid={"n_compromised": [5, 10]},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def fake_results(shard):
    return [
        RunResult(
            n_pairs=10,
            dndp_successes=5 + run_index,
            mndp_successes=7,
            mean_degree=12.5,
            mean_dndp_latency=2.0 + run_index,
        )
        for run_index in shard.run_indices
    ]


def populate(store, spec, revision=REV):
    store.register_campaign(spec, revision)
    for shard in spec.shards():
        store.write_shard(
            spec, revision, shard, fake_results(shard), None
        )


class TestLifecycle:
    def test_register_is_idempotent(self, tmp_path):
        spec = tiny_spec()
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            store.register_campaign(spec, REV)
            store.register_campaign(spec, REV)
            status = store.campaign_status(
                spec.name, spec.spec_hash(), REV
            )
            assert status == "running"

    def test_refuses_spec_hash_mixing(self, tmp_path):
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            store.register_campaign(tiny_spec(), REV)
            with pytest.raises(ConfigurationError, match="refusing"):
                store.register_campaign(tiny_spec(seed=7), REV)

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "s.sqlite")
        with CampaignStore(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigurationError, match="schema"):
            CampaignStore(path)


class TestShards:
    def test_write_and_completed_round_trip(self, tmp_path):
        spec = tiny_spec()
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            populate(store, spec)
            done = store.completed_shards(
                spec.name, spec.spec_hash(), REV
            )
            assert done == frozenset(range(4))

    def test_wrong_result_count_is_rejected(self, tmp_path):
        spec = tiny_spec()
        shard = spec.shards()[0]
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            store.register_campaign(spec, REV)
            with pytest.raises(ConfigurationError, match="expected"):
                store.write_shard(
                    spec, REV, shard, fake_results(shard)[:1], None
                )

    def test_point_results_rebuild_experiment_result(self, tmp_path):
        spec = tiny_spec()
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            populate(store, spec)
            results = store.point_results(
                spec.name, spec.spec_hash(), REV
            )
        assert sorted(results) == [0, 1]
        params, result = results[0]
        assert params["n_compromised"] == 5
        assert len(result.runs) == 4
        # run order is run-index order: dndp = 5, 6, 7, 8
        assert [r.dndp_successes for r in result.runs] == [5, 6, 7, 8]
        assert result.discovery_probability("dndp") == pytest.approx(
            (5 + 6 + 7 + 8) / 40
        )

    def test_metrics_snapshot_round_trip(self, tmp_path):
        """A shard's merged snapshot survives persistence with timers
        stripped (the deterministic subset) and counters intact."""
        spec = tiny_spec()
        shard = spec.shards()[0]
        registry = MetricsRegistry()
        registry.inc("experiment.runs", 2)
        registry.observe("net.degree", 12.5)
        with registry.timer("experiment.run_seconds"):
            pass
        snapshot = registry.snapshot()
        assert snapshot.timers
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            store.register_campaign(spec, REV)
            store.write_shard(
                spec, REV, shard, fake_results(shard), snapshot
            )
            stored = store.shard_metrics(
                spec.name, spec.spec_hash(), REV
            )
        assert set(stored) == {shard.index}
        restored = stored[shard.index]
        assert restored.counters["experiment.runs"] == 2
        assert not restored.timers
        deterministic = snapshot.deterministic()
        assert restored.counters == deterministic.counters
        assert restored.histograms == deterministic.histograms


class TestCanonicalForm:
    def test_export_is_byte_deterministic(self, tmp_path):
        """Two stores with the same content but different insertion
        histories export to identical bytes."""
        spec = tiny_spec()
        forward = str(tmp_path / "fwd.sqlite")
        backward = str(tmp_path / "bwd.sqlite")
        with CampaignStore(forward) as store:
            populate(store, spec)
        with CampaignStore(backward) as store:
            store.register_campaign(spec, REV)
            for shard in reversed(spec.shards()):
                store.write_shard(
                    spec, REV, shard, fake_results(shard), None
                )
        exports = []
        for path in (forward, backward):
            out = path + ".canonical"
            with CampaignStore(path) as store:
                store.export_canonical(out)
            with open(out, "rb") as handle:
                exports.append(handle.read())
        assert exports[0] == exports[1]

    def test_digest_ignores_insertion_order(self, tmp_path):
        spec = tiny_spec()
        digests = []
        for name, order in (("a", False), ("b", True)):
            with CampaignStore(str(tmp_path / f"{name}.sqlite")) as store:
                store.register_campaign(spec, REV)
                shards = spec.shards()
                if order:
                    shards = list(reversed(shards))
                for shard in shards:
                    store.write_shard(
                        spec, REV, shard, fake_results(shard), None
                    )
                digests.append(store.canonical_digest())
        assert digests[0] == digests[1]

    def test_mark_complete_only_in_export(self, tmp_path):
        spec = tiny_spec()
        path = str(tmp_path / "s.sqlite")
        out = str(tmp_path / "out.sqlite")
        key = (spec.name, spec.spec_hash(), REV)
        with CampaignStore(path) as store:
            populate(store, spec)
            store.export_canonical(out, mark_complete=key)
            assert store.campaign_status(*key) == "running"
        with CampaignStore(out) as store:
            assert store.campaign_status(*key) == "complete"

    def test_spec_for_round_trip(self, tmp_path):
        spec = tiny_spec()
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            populate(store, spec)
            stored, revision = store.spec_for("smoke")
        assert revision == REV
        assert stored.spec_hash() == spec.spec_hash()

    def test_spec_for_unknown_campaign_raises(self, tmp_path):
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            with pytest.raises(ConfigurationError, match="not found"):
                store.spec_for("ghost")

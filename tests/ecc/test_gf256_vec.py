"""Tests for the vectorized GF(2^8) kernels against the scalar field.

Everything here compares :mod:`repro.ecc.gf256_vec` element-for-element
with :class:`repro.ecc.gf256.GF256`, exhaustively where the domain is
small enough (all 256x256 operand pairs), and in particular pins the
zero-sentinel trick: log sums involving a zero operand must land in the
zero tail of the extended antilog table, never in the duplicated
wrap-around entries.
"""

import numpy as np
import pytest

from repro.ecc import gf256_vec as vec
from repro.ecc.gf256 import GF256


def _all_pairs():
    a = np.repeat(np.arange(256, dtype=np.uint8), 256)
    b = np.tile(np.arange(256, dtype=np.uint8), 256)
    return a, b


class TestKernelsExhaustive:
    def test_gf_mul_all_pairs(self):
        a, b = _all_pairs()
        got = vec.gf_mul(a, b)
        want = np.array(
            [GF256.multiply(int(x), int(y)) for x, y in zip(a, b)],
            dtype=np.uint8,
        )
        assert np.array_equal(got, want)

    def test_gf_mul_zero_sentinel_rows(self):
        # The historical regression: EXPZ once carried the scalar
        # table's wrap-around entries past index 2*255, so 0*1 and 1*0
        # decoded to 2.  Pin every zero-operand product to 0.
        values = np.arange(256, dtype=np.uint8)
        zeros = np.zeros(256, dtype=np.uint8)
        assert not vec.gf_mul(values, zeros).any()
        assert not vec.gf_mul(zeros, values).any()

    def test_gf_div_all_nonzero_divisors(self):
        a = np.repeat(np.arange(256, dtype=np.uint8), 255)
        b = np.tile(np.arange(1, 256, dtype=np.uint8), 256)
        got = vec.gf_div(a, b)
        want = np.array(
            [GF256.divide(int(x), int(y)) for x, y in zip(a, b)],
            dtype=np.uint8,
        )
        assert np.array_equal(got, want)

    def test_gf_inv_matches_scalar(self):
        values = np.arange(1, 256, dtype=np.uint8)
        got = vec.gf_inv(values)
        want = np.array(
            [GF256.inverse(int(x)) for x in values], dtype=np.uint8
        )
        assert np.array_equal(got, want)

    def test_gf_mul_scalar_matches_elementwise(self):
        values = np.arange(256, dtype=np.uint8)
        for scalar in (0, 1, 2, 37, 255):
            got = vec.gf_mul_scalar(values, scalar)
            want = vec.gf_mul(
                values, np.full(256, scalar, dtype=np.uint8)
            )
            assert np.array_equal(got, want)

    def test_gf_pow_alpha_negative_exponents(self):
        exponents = np.arange(-300, 301, dtype=np.int64)
        got = vec.gf_pow_alpha(exponents)
        want = np.array(
            [GF256.power(2, int(e)) for e in exponents], dtype=np.uint8
        )
        assert np.array_equal(got, want)


class TestBatchedHelpers:
    def test_poly_eval_batch_matches_horner(self, rng):
        polys = rng.integers(0, 256, size=(50, 9), dtype=np.uint8)
        points = rng.integers(0, 256, size=50, dtype=np.uint8)
        got = vec.poly_eval_batch(polys, points)
        for row, point, result in zip(polys, points, got):
            value = 0
            for coefficient in row:
                value = GF256.multiply(value, int(point)) ^ int(
                    coefficient
                )
            assert value == int(result)

    @pytest.mark.parametrize("n_parity", [2, 3, 8, 16])
    def test_syndromes_batch_matches_scalar_eval(self, rng, n_parity):
        words = rng.integers(0, 256, size=(40, 30), dtype=np.uint8)
        got = vec.syndromes_batch(words, n_parity)
        for word, row in zip(words, got):
            for i in range(1, n_parity + 1):
                point = GF256.power(2, i)
                value = 0
                for symbol in word:
                    value = GF256.multiply(value, point) ^ int(symbol)
                assert value == int(row[i - 1])

    def test_erasure_locators_identity_padding(self):
        # Zero-padded roots contribute the identity factor (0x + 1).
        roots = np.array([[0, 0, 0]], dtype=np.uint8)
        locator = vec.erasure_locators_batch(roots)[0]
        assert locator.tolist() == [0, 0, 0, 1]

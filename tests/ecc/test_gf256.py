"""Unit tests for GF(2^8) arithmetic."""

import pytest

from repro.ecc.gf256 import GF256
from repro.errors import ConfigurationError


class TestFieldAxioms:
    def test_addition_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100

    def test_additive_inverse_is_self(self):
        for a in (1, 77, 255):
            assert GF256.add(a, a) == 0

    def test_multiplication_identity(self):
        for a in range(256):
            assert GF256.multiply(a, 1) == a

    def test_multiplication_zero(self):
        for a in (0, 1, 128, 255):
            assert GF256.multiply(a, 0) == 0

    def test_multiplication_commutative(self, rng):
        for _ in range(100):
            a, b = rng.integers(0, 256, size=2)
            assert GF256.multiply(int(a), int(b)) == GF256.multiply(
                int(b), int(a)
            )

    def test_multiplication_associative(self, rng):
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, size=3))
            left = GF256.multiply(GF256.multiply(a, b), c)
            right = GF256.multiply(a, GF256.multiply(b, c))
            assert left == right

    def test_distributive(self, rng):
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, size=3))
            left = GF256.multiply(a, GF256.add(b, c))
            right = GF256.add(GF256.multiply(a, b), GF256.multiply(a, c))
            assert left == right

    def test_inverse(self):
        for a in range(1, 256):
            assert GF256.multiply(a, GF256.inverse(a)) == 1

    def test_inverse_of_zero(self):
        with pytest.raises(ConfigurationError):
            GF256.inverse(0)

    def test_divide(self, rng):
        for _ in range(100):
            a = int(rng.integers(0, 256))
            b = int(rng.integers(1, 256))
            assert GF256.multiply(GF256.divide(a, b), b) == a

    def test_divide_by_zero(self):
        with pytest.raises(ConfigurationError):
            GF256.divide(5, 0)

    def test_power(self):
        assert GF256.power(2, 0) == 1
        assert GF256.power(2, 1) == 2
        assert GF256.power(2, 8) == 0x1D  # from the primitive polynomial

    def test_power_negative(self):
        for a in (1, 3, 200):
            assert GF256.multiply(
                GF256.power(a, -1), a
            ) == 1

    def test_power_zero_base(self):
        assert GF256.power(0, 3) == 0
        with pytest.raises(ConfigurationError):
            GF256.power(0, 0)

    def test_generator_order(self):
        """alpha = 2 generates the full multiplicative group."""
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = GF256.multiply(value, 2)
        assert len(seen) == 255
        assert value == 1  # full cycle


class TestPolynomials:
    def test_poly_add_unequal_lengths(self):
        # (x^2 + 1) + (x) = x^2 + x + 1
        assert GF256.poly_add([1, 0, 1], [1, 0]) == [1, 1, 1]

    def test_poly_multiply_simple(self):
        # (x + 1)(x + 1) = x^2 + 1 in characteristic 2
        assert GF256.poly_multiply([1, 1], [1, 1]) == [1, 0, 1]

    def test_poly_eval_horner(self):
        # p(x) = 2x^2 + 3x + 5 at x = 1 -> 2 ^ 3 ^ 5 = 4
        assert GF256.poly_eval([2, 3, 5], 1) == 2 ^ 3 ^ 5

    def test_poly_eval_at_zero_gives_constant(self):
        assert GF256.poly_eval([7, 9, 42], 0) == 42

    def test_poly_divmod_roundtrip(self, rng):
        for _ in range(50):
            dividend = [int(x) for x in rng.integers(0, 256, size=10)]
            divisor = [1] + [int(x) for x in rng.integers(0, 256, size=3)]
            quotient, remainder = GF256.poly_divmod(dividend, divisor)
            recombined = GF256.poly_add(
                GF256.poly_multiply(quotient, divisor), remainder
            )
            # strip leading zeros before comparing
            def strip(p):
                i = 0
                while i < len(p) - 1 and p[i] == 0:
                    i += 1
                return p[i:]
            assert strip(recombined) == strip(dividend)

    def test_poly_divmod_by_zero(self):
        with pytest.raises(ConfigurationError):
            GF256.poly_divmod([1, 2], [0])

    def test_poly_scale(self):
        assert GF256.poly_scale([1, 2], 3) == [3, 6]

    def test_derivative_char2(self):
        # d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 -> x^2 + 1 in GF(2^m)
        assert GF256.poly_derivative([1, 1, 1, 1]) == [1, 0, 1]

    def test_derivative_constant(self):
        assert GF256.poly_derivative([5]) == [0]

"""Unit tests for the block interleaver."""

import pytest

from repro.ecc.interleaver import BlockInterleaver
from repro.errors import ConfigurationError


class TestRoundtrip:
    def test_inverse(self, rng):
        interleaver = BlockInterleaver(4, 6)
        symbols = [int(x) for x in rng.integers(0, 100, size=24)]
        assert interleaver.deinterleave(
            interleaver.interleave(symbols)
        ) == symbols

    def test_known_permutation(self):
        interleaver = BlockInterleaver(2, 3)
        # rows: [0 1 2] / [3 4 5]; read columns -> 0 3 1 4 2 5
        assert interleaver.interleave([0, 1, 2, 3, 4, 5]) == [
            0, 3, 1, 4, 2, 5,
        ]

    def test_wrong_length(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaver(2, 3).interleave([1, 2, 3])


class TestBurstSpreading:
    def test_burst_hits_each_row_once(self):
        """A burst of `rows` consecutive post-interleave symbols spans
        one column: exactly one symbol per original row."""
        rows, columns = 8, 16
        interleaver = BlockInterleaver(rows, columns)
        symbols = list(range(rows * columns))
        mixed = interleaver.interleave(symbols)
        burst = set(mixed[24 : 24 + rows])
        row_hits = [0] * rows
        for symbol in burst:
            row_hits[symbol // columns] += 1
        assert max(row_hits) == 1

    def test_max_burst_per_row_bound(self):
        interleaver = BlockInterleaver(8, 16)
        assert interleaver.max_burst_per_row(8) == 1
        assert interleaver.max_burst_per_row(9) == 2
        assert interleaver.max_burst_per_row(0) == 0
        assert interleaver.max_burst_per_row(10_000) == 16

    def test_bound_holds_empirically(self):
        rows, columns = 5, 7
        interleaver = BlockInterleaver(rows, columns)
        symbols = list(range(rows * columns))
        mixed = interleaver.interleave(symbols)
        for burst_len in (3, 5, 8, 12):
            bound = interleaver.max_burst_per_row(burst_len)
            for start in range(len(mixed) - burst_len + 1):
                burst = mixed[start : start + burst_len]
                hits = [0] * rows
                for symbol in burst:
                    hits[symbol // columns] += 1
                assert max(hits) <= bound

    def test_rejects_negative_burst(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaver(2, 2).max_burst_per_row(-1)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaver(0, 3)

"""Unit tests for the Reed-Solomon codec."""

import numpy as np
import pytest

from repro.ecc.reed_solomon import ReedSolomonCodec
from repro.errors import ConfigurationError, EccDecodeError


class TestEncode:
    def test_systematic(self):
        rs = ReedSolomonCodec(4)
        message = [10, 20, 30]
        codeword = rs.encode(message)
        assert codeword[:3] == message
        assert len(codeword) == 7

    def test_parity_makes_syndromes_zero(self, rng):
        rs = ReedSolomonCodec(6)
        message = [int(x) for x in rng.integers(0, 256, size=20)]
        codeword = rs.encode(message)
        assert all(s == 0 for s in rs._syndromes(codeword))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCodec(4).encode([])

    def test_rejects_oversize(self):
        rs = ReedSolomonCodec(4)
        with pytest.raises(ConfigurationError):
            rs.encode([0] * 252)

    def test_rejects_bad_symbols(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCodec(4).encode([256])

    def test_rejects_bad_parity_count(self):
        with pytest.raises(ConfigurationError):
            ReedSolomonCodec(0)
        with pytest.raises(ConfigurationError):
            ReedSolomonCodec(255)


class TestDecodeClean:
    def test_identity(self, rng):
        rs = ReedSolomonCodec(8)
        message = [int(x) for x in rng.integers(0, 256, size=30)]
        assert rs.decode(rs.encode(message)) == message


class TestDecodeErrors:
    @pytest.mark.parametrize("n_errors", [1, 2, 3, 4])
    def test_corrects_up_to_capability(self, rng, n_errors):
        rs = ReedSolomonCodec(8)
        message = [int(x) for x in rng.integers(0, 256, size=40)]
        codeword = rs.encode(message)
        positions = rng.choice(len(codeword), size=n_errors, replace=False)
        for position in positions:
            codeword[position] ^= int(rng.integers(1, 256))
        assert rs.decode(codeword) == message

    def test_error_in_parity(self, rng):
        rs = ReedSolomonCodec(4)
        message = [1, 2, 3]
        codeword = rs.encode(message)
        codeword[-1] ^= 0xFF
        assert rs.decode(codeword) == message

    def test_too_many_errors_raises(self, rng):
        rs = ReedSolomonCodec(4)
        message = [int(x) for x in rng.integers(0, 256, size=20)]
        codeword = rs.encode(message)
        for position in range(6):
            codeword[position] ^= 0x5A
        with pytest.raises(EccDecodeError):
            rs.decode(codeword)


class TestDecodeErasures:
    @pytest.mark.parametrize("n_erasures", [1, 4, 8])
    def test_corrects_up_to_n_parity(self, rng, n_erasures):
        rs = ReedSolomonCodec(8)
        message = [int(x) for x in rng.integers(0, 256, size=40)]
        codeword = rs.encode(message)
        positions = rng.choice(
            len(codeword), size=n_erasures, replace=False
        ).tolist()
        for position in positions:
            codeword[position] = 0
        assert rs.decode(codeword, positions) == message

    def test_too_many_erasures(self, rng):
        rs = ReedSolomonCodec(4)
        codeword = rs.encode([1, 2, 3])
        with pytest.raises(EccDecodeError):
            rs.decode(codeword, [0, 1, 2, 3, 4])

    def test_erasure_position_out_of_range(self):
        rs = ReedSolomonCodec(4)
        codeword = rs.encode([1, 2, 3])
        with pytest.raises(ConfigurationError):
            rs.decode(codeword, [99])


class TestMixedErrorsErasures:
    def test_two_errors_plus_four_erasures(self, rng):
        """2e + f <= n_parity with n_parity = 8."""
        rs = ReedSolomonCodec(8)
        message = [int(x) for x in rng.integers(0, 256, size=60)]
        codeword = rs.encode(message)
        positions = rng.choice(len(codeword), size=6, replace=False)
        error_positions, erasure_positions = positions[:2], positions[2:]
        for position in error_positions:
            codeword[position] ^= int(rng.integers(1, 256))
        for position in erasure_positions:
            codeword[position] = int(rng.integers(0, 256))
        assert rs.decode(codeword, erasure_positions.tolist()) == message

    def test_fuzz_within_capability(self, rng):
        for _ in range(60):
            n_parity = int(rng.integers(2, 24))
            k = int(rng.integers(1, 255 - n_parity))
            rs = ReedSolomonCodec(n_parity)
            message = [int(x) for x in rng.integers(0, 256, size=k)]
            codeword = rs.encode(message)
            e = int(rng.integers(0, n_parity // 2 + 1))
            f = int(rng.integers(0, n_parity - 2 * e + 1))
            positions = rng.choice(len(codeword), size=e + f, replace=False)
            for position in positions[:e]:
                codeword[position] ^= int(rng.integers(1, 256))
            for position in positions[e:]:
                codeword[position] = int(rng.integers(0, 256))
            assert rs.decode(codeword, positions[e:].tolist()) == message


class TestMetadata:
    def test_correction_capability(self):
        assert ReedSolomonCodec(8).correction_capability() == (4, 8)

    def test_repr(self):
        assert "8" in repr(ReedSolomonCodec(8))

    def test_short_word_rejected(self):
        rs = ReedSolomonCodec(8)
        with pytest.raises(ConfigurationError):
            rs.decode([1, 2, 3])

"""Unit tests for the repetition code."""

import numpy as np
import pytest

from repro.ecc.repetition import RepetitionCodec
from repro.errors import ConfigurationError, DecodeError


class TestEncode:
    def test_repeats(self):
        codec = RepetitionCodec(3)
        assert codec.encode([1, 0]).tolist() == [1, 1, 1, 0, 0, 0]

    def test_factor_one_is_identity(self, rng):
        bits = rng.integers(0, 2, size=16, dtype=np.int8)
        assert np.array_equal(RepetitionCodec(1).encode(bits), bits)

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            RepetitionCodec(3).encode([0, 2])

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            RepetitionCodec(0)


class TestDecode:
    def test_clean_roundtrip(self, rng):
        codec = RepetitionCodec(5)
        bits = rng.integers(0, 2, size=40, dtype=np.int8)
        assert np.array_equal(codec.decode(codec.encode(bits)), bits)

    def test_majority_beats_errors(self):
        codec = RepetitionCodec(3)
        # one flipped copy per bit still decodes
        assert codec.decode([1, 1, 0, 0, 1, 0]).tolist() == [1, 0]

    def test_erasures_do_not_vote(self):
        codec = RepetitionCodec(3)
        assert codec.decode([None, None, 1, 0, None, 0]).tolist() == [1, 0]

    def test_tie_raises(self):
        codec = RepetitionCodec(2)
        with pytest.raises(DecodeError):
            codec.decode([1, 0])

    def test_total_erasure_raises(self):
        codec = RepetitionCodec(3)
        with pytest.raises(DecodeError):
            codec.decode([None, None, None])

    def test_unaligned_length(self):
        with pytest.raises(ConfigurationError):
            RepetitionCodec(3).decode([1, 1])

    def test_tolerated_erasures(self):
        assert RepetitionCodec(5).tolerated_erasures_per_bit() == 4

"""Unit tests for the rate-mu expansion codec."""

import numpy as np
import pytest

from repro.ecc.codec import ExpansionCodec, erasure_tolerance
from repro.errors import ConfigurationError, DecodeError


class TestErasureTolerance:
    def test_paper_value(self):
        assert erasure_tolerance(1.0) == pytest.approx(0.5)

    def test_monotone_in_mu(self):
        assert erasure_tolerance(2.0) > erasure_tolerance(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            erasure_tolerance(0.0)


class TestRoundtrip:
    @pytest.mark.parametrize("n_bits", [1, 8, 21, 100, 672])
    def test_clean(self, rng, n_bits):
        codec = ExpansionCodec(1.0)
        bits = rng.integers(0, 2, size=n_bits).astype(np.int8)
        coded = codec.encode(bits)
        decoded = codec.decode([int(b) for b in coded], n_bits)
        assert np.array_equal(decoded, bits)

    @pytest.mark.parametrize("mu", [0.5, 1.0, 2.0])
    def test_expansion_close_to_target(self, mu):
        codec = ExpansionCodec(mu)
        n_bits = 800
        coded = codec.encoded_bits(n_bits)
        assert coded >= (1 + mu) * n_bits
        assert coded <= (1 + mu) * n_bits * 1.2  # bounded rounding

    def test_large_message_chunks(self, rng):
        """Messages beyond one RS codeword chunk correctly."""
        codec = ExpansionCodec(1.0)
        bits = rng.integers(0, 2, size=4000).astype(np.int8)
        coded = codec.encode(bits)
        decoded = codec.decode([int(b) for b in coded], 4000)
        assert np.array_equal(decoded, bits)


class TestBurstErasures:
    def test_tolerated_burst_decodes(self, rng):
        codec = ExpansionCodec(1.0)
        n_bits = 160
        bits = rng.integers(0, 2, size=n_bits).astype(np.int8)
        coded = [int(b) for b in codec.encode(bits)]
        burst = codec.tolerated_burst_bits(n_bits)
        assert burst > 0
        start = 13
        for i in range(start, start + burst):
            coded[i] = None
        decoded = codec.decode(coded, n_bits)
        assert np.array_equal(decoded, bits)

    def test_half_message_burst_fails_at_mu_one(self, rng):
        """Jamming more than mu/(1+mu) = half of the bits defeats it."""
        codec = ExpansionCodec(1.0)
        n_bits = 160
        bits = rng.integers(0, 2, size=n_bits).astype(np.int8)
        coded = [int(b) for b in codec.encode(bits)]
        n_jam = int(len(coded) * 0.6)
        for i in range(len(coded) - n_jam, len(coded)):
            coded[i] = None
        with pytest.raises(DecodeError):
            codec.decode(coded, n_bits)

    def test_bit_errors_also_corrected(self, rng):
        codec = ExpansionCodec(1.0)
        bits = rng.integers(0, 2, size=64).astype(np.int8)
        coded = [int(b) for b in codec.encode(bits)]
        # Flip one full symbol's worth of bits: one RS error.
        for i in range(8, 16):
            coded[i] ^= 1
        decoded = codec.decode(coded, 64)
        assert np.array_equal(decoded, bits)


class TestValidation:
    def test_wrong_coded_length(self):
        codec = ExpansionCodec(1.0)
        with pytest.raises(ConfigurationError):
            codec.decode([0] * 10, 21)

    def test_rejects_empty_message(self):
        with pytest.raises(ConfigurationError):
            ExpansionCodec(1.0).encode(np.zeros(0, dtype=np.int8))

    def test_rejects_bad_mu(self):
        with pytest.raises(ConfigurationError):
            ExpansionCodec(0.0)

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            ExpansionCodec(1.0).encode(np.array([0, 2], dtype=np.int8))

    def test_parity_symbols_positive(self):
        codec = ExpansionCodec(0.5)
        assert codec.parity_symbols(1) >= 1
        with pytest.raises(ConfigurationError):
            codec.parity_symbols(0)

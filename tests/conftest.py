"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.core.config import JRSNDConfig
from repro.utils.rng import derive_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for the test at hand."""
    return derive_rng(1234, "tests")


@pytest.fixture
def small_config() -> JRSNDConfig:
    """A small-field configuration suitable for event-driven runs.

    ``rho`` is raised so that ``lambda`` (and hence ``r``) stays small
    enough for event-level simulation, while keeping ``lambda > 1`` so
    the buffer/process schedule remains meaningful.
    """
    return JRSNDConfig(
        n_nodes=5,
        codes_per_node=3,
        share_count=3,
        n_compromised=0,
        field_width=400.0,
        field_height=400.0,
        tx_range=300.0,
        rho=1e-9,
    )


@pytest.fixture
def paper_config() -> JRSNDConfig:
    """The exact Table I defaults."""
    return JRSNDConfig()

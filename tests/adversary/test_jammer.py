"""Unit tests for the jamming models (the Theorem 1 adversaries)."""

import numpy as np
import pytest

from repro.adversary.jammer import JammerStrategy, JammingModel, MediumJammer
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.field import RectangularField
from repro.sim.medium import RadioMedium


def _model(strategy, codes, z=8, mu=1.0):
    return JammingModel(strategy, frozenset(codes), z, mu)


class TestJammingModel:
    def test_codes_per_message(self):
        model = _model(JammerStrategy.RANDOM, range(100), z=8, mu=1.0)
        assert model.codes_per_message == 16  # z (1+mu)/mu

    def test_beta_formula(self):
        model = _model(JammerStrategy.RANDOM, range(100), z=8, mu=1.0)
        assert model.random_success_probability() == pytest.approx(
            16 / 100
        )

    def test_beta_capped_at_one(self):
        model = _model(JammerStrategy.RANDOM, range(4), z=8, mu=1.0)
        assert model.random_success_probability() == 1.0

    def test_no_codes_no_success(self, rng):
        model = _model(JammerStrategy.REACTIVE, [])
        assert model.random_success_probability() == 0.0
        assert not model.message_jammed(5, rng)

    def test_reactive_jams_compromised_always(self, rng):
        model = _model(JammerStrategy.REACTIVE, [5])
        assert all(model.message_jammed(5, rng) for _ in range(20))

    def test_reactive_ignores_safe_code(self, rng):
        model = _model(JammerStrategy.REACTIVE, [5])
        assert not model.message_jammed(6, rng)

    def test_session_codes_never_jammed(self, rng):
        model = _model(JammerStrategy.REACTIVE, [5])
        assert not model.message_jammed(("session", 1, 2), rng)
        assert not model.burst_jammed(("session", 1, 2), 3, rng)

    def test_random_rate_matches_beta(self, rng):
        model = _model(JammerStrategy.RANDOM, range(200), z=8, mu=1.0)
        hits = sum(model.message_jammed(0, rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(16 / 200, abs=0.02)

    def test_burst_rate_matches_beta_prime(self, rng):
        model = _model(JammerStrategy.RANDOM, range(200), z=8, mu=1.0)
        hits = sum(model.burst_jammed(0, 3, rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(3 * 16 / 200, abs=0.03)

    def test_burst_capped(self, rng):
        model = _model(JammerStrategy.RANDOM, range(10), z=8, mu=1.0)
        assert all(model.burst_jammed(0, 3, rng) for _ in range(20))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JammingModel("bad", frozenset(), 8, 1.0)
        with pytest.raises(ConfigurationError):
            _model(JammerStrategy.RANDOM, [], z=0)
        with pytest.raises(ConfigurationError):
            _model(JammerStrategy.RANDOM, [], mu=0)


class TestMediumJammer:
    def _setup(self, strategy, codes, rng):
        simulator = Simulator()
        field = RectangularField(100, 100, 50)
        medium = RadioMedium(simulator, field, mu=1.0)
        medium.register_node(0, lambda: (0, 0))
        medium.register_node(1, lambda: (10, 0))
        jammer = MediumJammer(
            _model(strategy, codes), rng
        )
        medium.add_jammer(jammer)
        return simulator, medium, jammer

    def test_reactive_kills_compromised_transmission(self, rng):
        simulator, medium, jammer = self._setup(
            JammerStrategy.REACTIVE, [7], rng
        )
        got = []
        medium.listen(1, 7, got.append)
        medium.transmit(0, 7, "frame", duration=1.0)
        simulator.run()
        assert got == []
        assert jammer.effective == 1

    def test_reactive_cannot_touch_safe_code(self, rng):
        simulator, medium, jammer = self._setup(
            JammerStrategy.REACTIVE, [7], rng
        )
        got = []
        medium.listen(1, 9, got.append)
        medium.transmit(0, 9, "frame", duration=1.0)
        simulator.run()
        assert len(got) == 1

    def test_session_code_transmission_safe(self, rng):
        simulator, medium, jammer = self._setup(
            JammerStrategy.REACTIVE, [7], rng
        )
        got = []
        medium.listen(1, ("session", 1), got.append)
        medium.transmit(0, ("session", 1), "frame", duration=1.0)
        simulator.run()
        assert len(got) == 1

    def test_random_jammer_sometimes_misses(self, rng):
        delivered = 0
        for trial in range(200):
            simulator, medium, jammer = self._setup(
                JammerStrategy.RANDOM, range(100), rng
            )
            got = []
            medium.listen(1, 7, got.append)
            medium.transmit(0, 7, "frame", duration=1.0)
            simulator.run()
            delivered += len(got)
        # beta = 16/100, so ~84% should get through.
        assert delivered / 200 == pytest.approx(0.84, abs=0.08)

"""Unit tests for the DoS attack and the exact (l-1)*gamma bound."""

import pytest

from repro.adversary.dos import DoSAttacker
from repro.errors import ConfigurationError
from repro.predistribution.revocation import RevocationList


def _victims(code_holders, gamma):
    nodes = {node for holders in code_holders.values() for node in holders}
    victims = {}
    for node in nodes:
        codes = [c for c, holders in code_holders.items() if node in holders]
        victims[node] = RevocationList(codes, gamma)
    return victims


class TestFlood:
    def test_exact_l_minus_one_gamma_bound(self, rng):
        """Section V-D: a saturating flood under one compromised code
        costs its l-1 *other* holders exactly (l-1)*gamma wasted
        verifications — each holder revokes on its gamma-th invalid
        request, never performing a gamma+1-th."""
        gamma = 3
        l = 5
        # Node 0 is the compromised holder itself; the l-1 others are
        # the victims the paper's bound counts.
        other_holders = list(range(1, l))
        holders = {0: other_holders}
        victims = _victims(holders, gamma)
        attacker = DoSAttacker([0])
        impact = attacker.flood(
            victims, holders, requests_per_code=100, rng=rng
        )
        assert impact.verifications == (l - 1) * gamma
        assert impact.worst_code_verifications() == (l - 1) * gamma
        assert impact.revocations == l - 1

    def test_saturating_flood_pins_per_victim_gamma(self, rng):
        """With every holder a victim, each performs exactly gamma
        verifications before revoking."""
        gamma = 3
        l = 5
        holders = {0: list(range(l)), 1: list(range(l))}
        victims = _victims(holders, gamma)
        attacker = DoSAttacker([0, 1])
        impact = attacker.flood(victims, holders, requests_per_code=100, rng=rng)
        assert impact.worst_code_verifications() == l * gamma
        assert impact.revocations == 2 * l

    def test_verifications_stop_after_revocation(self, rng):
        gamma = 2
        holders = {0: [0, 1, 2]}
        victims = _victims(holders, gamma)
        attacker = DoSAttacker([0])
        first = attacker.flood(victims, holders, requests_per_code=50, rng=rng)
        # Re-flood: all victims have revoked, zero further verifications.
        second = attacker.flood(victims, holders, requests_per_code=50, rng=rng)
        assert first.verifications == 3 * gamma
        assert second.verifications == 0

    def test_unbounded_without_revocation(self, rng):
        """With a huge gamma the attack cost grows linearly: the
        baseline JR-SND avoids only via revocation."""
        holders = {0: [0, 1]}
        victims = _victims(holders, gamma=10_000)
        attacker = DoSAttacker([0])
        impact = attacker.flood(victims, holders, requests_per_code=500, rng=rng)
        assert impact.verifications == 2 * 500

    def test_nonheld_codes_ignored(self, rng):
        holders = {0: [0]}
        victims = _victims(holders, gamma=2)
        attacker = DoSAttacker([0, 99])
        impact = attacker.flood(victims, holders, requests_per_code=10, rng=rng)
        assert impact.per_code_verifications[99] == 0

    def test_injected_count(self, rng):
        holders = {0: [0], 1: [0]}
        victims = _victims(holders, gamma=1)
        attacker = DoSAttacker([0, 1])
        impact = attacker.flood(victims, holders, requests_per_code=7, rng=rng)
        assert impact.injected == 14

    def test_rejects_no_codes(self):
        with pytest.raises(ConfigurationError):
            DoSAttacker([])

    def test_rejects_zero_requests(self, rng):
        attacker = DoSAttacker([0])
        with pytest.raises(ConfigurationError):
            attacker.flood({}, {}, requests_per_code=0, rng=rng)

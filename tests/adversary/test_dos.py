"""Unit tests for the DoS attack and the (l-1)*gamma bound."""

import pytest

from repro.adversary.dos import DoSAttacker
from repro.errors import ConfigurationError
from repro.predistribution.revocation import RevocationList


def _victims(code_holders, gamma):
    nodes = {node for holders in code_holders.values() for node in holders}
    victims = {}
    for node in nodes:
        codes = [c for c, holders in code_holders.items() if node in holders]
        victims[node] = RevocationList(codes, gamma)
    return victims


class TestFlood:
    def test_bounded_by_l_minus_one_gamma(self, rng):
        """Section V-D: per compromised code at most (l-1)*gamma
        verifications once every victim revokes."""
        gamma = 3
        l = 5
        holders = {0: list(range(l)), 1: list(range(l))}
        victims = _victims(holders, gamma)
        attacker = DoSAttacker([0, 1])
        impact = attacker.flood(victims, holders, requests_per_code=100, rng=rng)
        # Each victim tolerates gamma + 1 requests before revoking.
        per_code_cap = l * (gamma + 1)
        assert impact.worst_code_verifications() <= per_code_cap
        assert impact.revocations == 2 * l

    def test_verifications_stop_after_revocation(self, rng):
        gamma = 2
        holders = {0: [0, 1, 2]}
        victims = _victims(holders, gamma)
        attacker = DoSAttacker([0])
        first = attacker.flood(victims, holders, requests_per_code=50, rng=rng)
        # Re-flood: all victims have revoked, zero further verifications.
        second = attacker.flood(victims, holders, requests_per_code=50, rng=rng)
        assert first.verifications == 3 * (gamma + 1)
        assert second.verifications == 0

    def test_unbounded_without_revocation(self, rng):
        """With a huge gamma the attack cost grows linearly: the
        baseline JR-SND avoids only via revocation."""
        holders = {0: [0, 1]}
        victims = _victims(holders, gamma=10_000)
        attacker = DoSAttacker([0])
        impact = attacker.flood(victims, holders, requests_per_code=500, rng=rng)
        assert impact.verifications == 2 * 500

    def test_nonheld_codes_ignored(self, rng):
        holders = {0: [0]}
        victims = _victims(holders, gamma=2)
        attacker = DoSAttacker([0, 99])
        impact = attacker.flood(victims, holders, requests_per_code=10, rng=rng)
        assert impact.per_code_verifications[99] == 0

    def test_injected_count(self, rng):
        holders = {0: [0], 1: [0]}
        victims = _victims(holders, gamma=1)
        attacker = DoSAttacker([0, 1])
        impact = attacker.flood(victims, holders, requests_per_code=7, rng=rng)
        assert impact.injected == 14

    def test_rejects_no_codes(self):
        with pytest.raises(ConfigurationError):
            DoSAttacker([])

    def test_rejects_zero_requests(self, rng):
        attacker = DoSAttacker([0])
        with pytest.raises(ConfigurationError):
            attacker.flood({}, {}, requests_per_code=0, rng=rng)

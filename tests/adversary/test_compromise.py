"""Unit tests for the node compromise model."""

import pytest

from repro.adversary.compromise import CompromiseModel
from repro.errors import ConfigurationError
from repro.predistribution.authority import PreDistributor


@pytest.fixture
def assignment(rng):
    return PreDistributor(40, codes_per_node=4, share_count=8).assign(rng)


class TestCompromise:
    def test_random_count(self, assignment, rng):
        state = CompromiseModel(assignment).compromise_random(5, rng)
        assert state.n_nodes == 5

    def test_codes_are_union(self, assignment, rng):
        model = CompromiseModel(assignment)
        state = model.compromise_nodes([0, 3])
        expected = set(assignment.node_codes[0]) | set(
            assignment.node_codes[3]
        )
        assert set(state.codes) == expected
        assert state.n_codes == len(expected)

    def test_knows_queries(self, assignment, rng):
        model = CompromiseModel(assignment)
        state = model.compromise_nodes([1])
        assert state.knows_node(1)
        assert not state.knows_node(2)
        for code in assignment.node_codes[1]:
            assert state.knows_code(code)

    def test_empty(self, assignment):
        state = CompromiseModel(assignment).empty()
        assert state.n_nodes == 0
        assert state.n_codes == 0

    def test_zero_q(self, assignment, rng):
        state = CompromiseModel(assignment).compromise_random(0, rng)
        assert state.n_nodes == 0

    def test_q_exceeds_n(self, assignment, rng):
        with pytest.raises(ConfigurationError):
            CompromiseModel(assignment).compromise_random(99, rng)

    def test_distinct_nodes(self, assignment, rng):
        state = CompromiseModel(assignment).compromise_random(10, rng)
        assert len(state.nodes) == 10
